package cpisim

import (
	"fmt"

	"pipecache/internal/btb"
	"pipecache/internal/obs"
)

// SetObs attaches a run-scoped metrics registry. The simulator keeps its
// zero-allocation per-pass accounting (BenchResult, cache.Stats,
// btb.Stats) on the hot path and folds the totals into reg when Run
// completes, so instrumentation adds no per-event synchronization.
func (s *Sim) SetObs(reg *obs.Registry) { s.obs = reg }

// publish folds one completed run into the registry: interpreter
// instructions retired, reference and stall totals, delay-slot fill
// statistics of the static schedule, the per-level cache counters, and
// the BTB outcome counters.
func (s *Sim) publish(res *Result) {
	reg := s.obs
	if reg == nil {
		return
	}
	reg.Counter("sim.runs").Inc()

	var insts, ifetches, dreads, dwrites, ctis, loads, loadUses int64
	var branchStall, fillStall, loadStall int64
	var outcomes [5]int64
	for i := range res.Benches {
		b := &res.Benches[i]
		insts += b.Insts
		ifetches += b.IFetches
		dreads += b.DReads
		dwrites += b.DWrites
		ctis += b.CTIs
		loads += b.Loads
		loadUses += b.LoadUses
		branchStall += b.BranchStall
		fillStall += b.FillStall
		loadStall += b.LoadStall
		for o, n := range b.BTBOutcomes {
			outcomes[o] += n
		}
	}
	reg.Counter("interp.insts_retired").Add(insts)
	reg.Counter("sim.ifetches").Add(ifetches)
	reg.Counter("sim.dreads").Add(dreads)
	reg.Counter("sim.dwrites").Add(dwrites)
	reg.Counter("sim.ctis").Add(ctis)
	reg.Counter("sim.loads").Add(loads)
	reg.Counter("sim.load_uses").Add(loadUses)
	reg.Counter("sim.branch_stall_cycles").Add(branchStall)
	reg.Counter("sim.btb_fill_stall_cycles").Add(fillStall)
	reg.Counter("sim.load_stall_cycles").Add(loadStall)

	// Static delay-slot fill accounting, summed over the workloads'
	// translations: slots filled by hoisting (useful on both paths), from
	// the predicted path (squashed on mispredicts), and with noops.
	var hoisted, predicted, noops int64
	for _, b := range s.benches {
		for i := range b.xlat.Blocks {
			x := &b.xlat.Blocks[i]
			hoisted += int64(x.R)
			predicted += int64(x.S)
			noops += int64(x.Noops)
		}
	}
	reg.Counter("sched.slots_hoisted").Add(hoisted)
	reg.Counter("sched.slots_predicted").Add(predicted)
	reg.Counter("sched.slots_noop").Add(noops)

	if s.ibank != nil {
		s.ibank.Publish(reg, "cache.l1i.")
	}
	if s.dbank != nil {
		s.dbank.Publish(reg, "cache.l1d.")
	}
	if s.l2bank != nil {
		s.l2bank.Publish(reg, "cache.l2.")
	}
	if s.btb != nil {
		s.btb.Publish(reg, "btb")
		for o, n := range outcomes {
			reg.Counter(fmt.Sprintf("btb.outcome.%s", btb.Outcome(o))).Add(n)
		}
	}
}
