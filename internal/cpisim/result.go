package cpisim

import (
	"fmt"

	"pipecache/internal/stats"
)

// BenchResult is the cycle decomposition of one benchmark in the
// multiprogrammed mix. All stall counts are in cycles; Insts is the useful
// instruction count of the zero-delay architecture, which is the CPI
// denominator throughout the paper.
type BenchResult struct {
	Name   string
	Weight float64
	Insts  int64

	// Control transfer accounting.
	CTIs        int64
	BranchStall int64 // squashed slots, indirect-jump noops, pad noops
	FillStall   int64 // BTB one-cycle update stalls

	// Static prediction accounting (Table 3).
	PredTaken         int64 // CTIs statically predicted taken
	PredTakenRight    int64
	PredNotTaken      int64
	PredNotTakenRight int64

	// BTB accounting (Table 4), indexed by btb.Outcome.
	BTBOutcomes [5]int64

	// Load delay accounting (Table 5). LoadStall is for the configured
	// LoadSlots/LoadScheme; the epsilon histograms allow computing the
	// stall for any other depth or scheme from the same pass
	// (LoadStallFor).
	Loads     int64 // executed loads
	LoadUses  int64 // loads whose values were consumed
	LoadStall int64
	Eps       *stats.Hist // unrestricted dynamic epsilon (Figure 6)
	EpsBlock  *stats.Hist // block-restricted epsilon (Figure 7)

	// Cache accounting, indexed by the config banks.
	IFetches     int64
	IMisses      []int64
	DReads       int64
	DWrites      int64
	DReadMisses  []int64
	DWriteMisses []int64

	// L2 holds second-level accounting when Config.L2 is enabled.
	L2 *L2Result
}

// CyclesAt returns the total cycles for the given cache-bank indexes and
// refill penalties. An index of -1 skips that side's miss cycles (a perfect
// cache). Write misses pay the same penalty as read misses (write-allocate
// write-back, the configuration of the study).
func (b *BenchResult) CyclesAt(icfg, dcfg, ipen, dpen int) int64 {
	cycles := b.Insts + b.BranchStall + b.FillStall + b.LoadStall
	if icfg >= 0 {
		cycles += b.IMisses[icfg] * int64(ipen)
	}
	if dcfg >= 0 {
		cycles += (b.DReadMisses[dcfg] + b.DWriteMisses[dcfg]) * int64(dpen)
	}
	return cycles
}

// CPI returns cycles per useful instruction for the given cache
// configuration indexes and penalties.
func (b *BenchResult) CPI(icfg, dcfg, ipen, dpen int) float64 {
	if b.Insts == 0 {
		return 0
	}
	return float64(b.CyclesAt(icfg, dcfg, ipen, dpen)) / float64(b.Insts)
}

// IMissRatio returns instruction-fetch misses per fetch for the indexed
// I-cache.
func (b *BenchResult) IMissRatio(icfg int) float64 {
	if b.IFetches == 0 {
		return 0
	}
	return float64(b.IMisses[icfg]) / float64(b.IFetches)
}

// DMissRatio returns data misses per data access for the indexed D-cache.
func (b *BenchResult) DMissRatio(dcfg int) float64 {
	total := b.DReads + b.DWrites
	if total == 0 {
		return 0
	}
	return float64(b.DReadMisses[dcfg]+b.DWriteMisses[dcfg]) / float64(total)
}

// BranchStallPerCTI returns stall cycles per executed CTI (Tables 3 and 4
// report 1 + this as "cycles per CTI", before cache effects).
func (b *BenchResult) BranchStallPerCTI() float64 {
	if b.CTIs == 0 {
		return 0
	}
	return float64(b.BranchStall+b.FillStall) / float64(b.CTIs)
}

// LoadStallPerLoad returns the delay cycles per executed load (Table 5).
func (b *BenchResult) LoadStallPerLoad() float64 {
	if b.Loads == 0 {
		return 0
	}
	return float64(b.LoadStall) / float64(b.Loads)
}

// LoadStallFor returns the total load stall cycles this benchmark would
// incur with l load delay slots under the given scheme, computed from the
// recorded epsilon distributions.
func (b *BenchResult) LoadStallFor(l int, scheme LoadScheme) int64 {
	h := b.EpsBlock
	if scheme == LoadDynamic {
		h = b.Eps
	}
	if h == nil || l <= 0 {
		return 0
	}
	var stall int64
	for e := 0; e < l && e < h.Bins(); e++ {
		stall += int64(h.Count(e)) * int64(l-e)
	}
	return stall
}

// CyclesFor returns total cycles like CyclesAt but with the load stall
// recomputed for an arbitrary load-delay depth and scheme.
func (b *BenchResult) CyclesFor(l int, scheme LoadScheme, icfg, dcfg, ipen, dpen int) int64 {
	cycles := b.Insts + b.BranchStall + b.FillStall + b.LoadStallFor(l, scheme)
	if icfg >= 0 {
		cycles += b.IMisses[icfg] * int64(ipen)
	}
	if dcfg >= 0 {
		cycles += (b.DReadMisses[dcfg] + b.DWriteMisses[dcfg]) * int64(dpen)
	}
	return cycles
}

// CPIFor returns CPI with the load stall recomputed for depth l under the
// given scheme.
func (b *BenchResult) CPIFor(l int, scheme LoadScheme, icfg, dcfg, ipen, dpen int) float64 {
	if b.Insts == 0 {
		return 0
	}
	return float64(b.CyclesFor(l, scheme, icfg, dcfg, ipen, dpen)) / float64(b.Insts)
}

// Result is a full multiprogrammed run.
type Result struct {
	Config  Config
	Benches []BenchResult
}

// CPI returns the weighted harmonic mean CPI across the benchmarks, the
// paper's summary metric, for the given cache indexes and penalties.
func (r *Result) CPI(icfg, dcfg, ipen, dpen int) (float64, error) {
	if len(r.Benches) == 0 {
		return 0, fmt.Errorf("cpisim: empty result")
	}
	vals := make([]float64, len(r.Benches))
	ws := make([]float64, len(r.Benches))
	for i := range r.Benches {
		vals[i] = r.Benches[i].CPI(icfg, dcfg, ipen, dpen)
		ws[i] = r.Benches[i].Weight
	}
	return stats.WeightedHarmonicMean(vals, ws)
}

// Agg sums a per-benchmark counter over the suite.
func (r *Result) agg(f func(*BenchResult) int64) int64 {
	var s int64
	for i := range r.Benches {
		s += f(&r.Benches[i])
	}
	return s
}

// BranchStallPerCTI returns the suite-level stall cycles per CTI.
func (r *Result) BranchStallPerCTI() float64 {
	ctis := r.agg(func(b *BenchResult) int64 { return b.CTIs })
	if ctis == 0 {
		return 0
	}
	stall := r.agg(func(b *BenchResult) int64 { return b.BranchStall + b.FillStall })
	return float64(stall) / float64(ctis)
}

// LoadStallPerLoad returns the suite-level delay cycles per load.
func (r *Result) LoadStallPerLoad() float64 {
	loads := r.agg(func(b *BenchResult) int64 { return b.Loads })
	if loads == 0 {
		return 0
	}
	return float64(r.agg(func(b *BenchResult) int64 { return b.LoadStall })) / float64(loads)
}

// BranchCPIComponent returns suite branch-stall cycles per instruction
// (the "additional CPI" of Tables 3 and 4).
func (r *Result) BranchCPIComponent() float64 {
	insts := r.agg(func(b *BenchResult) int64 { return b.Insts })
	if insts == 0 {
		return 0
	}
	stall := r.agg(func(b *BenchResult) int64 { return b.BranchStall + b.FillStall })
	return float64(stall) / float64(insts)
}

// LoadCPIComponent returns suite load-stall cycles per instruction
// (Table 5's "CPI" column).
func (r *Result) LoadCPIComponent() float64 {
	insts := r.agg(func(b *BenchResult) int64 { return b.Insts })
	if insts == 0 {
		return 0
	}
	return float64(r.agg(func(b *BenchResult) int64 { return b.LoadStall })) / float64(insts)
}

// IMissRatio returns the suite instruction miss ratio for the indexed
// I-cache.
func (r *Result) IMissRatio(icfg int) float64 {
	f := r.agg(func(b *BenchResult) int64 { return b.IFetches })
	if f == 0 {
		return 0
	}
	m := r.agg(func(b *BenchResult) int64 { return b.IMisses[icfg] })
	return float64(m) / float64(f)
}

// DMissRatio returns the suite data miss ratio for the indexed D-cache.
func (r *Result) DMissRatio(dcfg int) float64 {
	a := r.agg(func(b *BenchResult) int64 { return b.DReads + b.DWrites })
	if a == 0 {
		return 0
	}
	m := r.agg(func(b *BenchResult) int64 { return b.DReadMisses[dcfg] + b.DWriteMisses[dcfg] })
	return float64(m) / float64(a)
}

// CPIFor returns the weighted harmonic mean CPI with load stalls
// recomputed for depth l under the given scheme.
func (r *Result) CPIFor(l int, scheme LoadScheme, icfg, dcfg, ipen, dpen int) (float64, error) {
	if len(r.Benches) == 0 {
		return 0, fmt.Errorf("cpisim: empty result")
	}
	vals := make([]float64, len(r.Benches))
	ws := make([]float64, len(r.Benches))
	for i := range r.Benches {
		vals[i] = r.Benches[i].CPIFor(l, scheme, icfg, dcfg, ipen, dpen)
		ws[i] = r.Benches[i].Weight
	}
	return stats.WeightedHarmonicMean(vals, ws)
}

// LoadStallPerLoadFor returns the suite delay cycles per load at depth l
// under the given scheme (Table 5's rows).
func (r *Result) LoadStallPerLoadFor(l int, scheme LoadScheme) float64 {
	loads := r.agg(func(b *BenchResult) int64 { return b.Loads })
	if loads == 0 {
		return 0
	}
	stall := r.agg(func(b *BenchResult) int64 { return b.LoadStallFor(l, scheme) })
	return float64(stall) / float64(loads)
}

// LoadCPIComponentFor returns suite load-stall cycles per instruction at
// depth l under the given scheme.
func (r *Result) LoadCPIComponentFor(l int, scheme LoadScheme) float64 {
	insts := r.agg(func(b *BenchResult) int64 { return b.Insts })
	if insts == 0 {
		return 0
	}
	stall := r.agg(func(b *BenchResult) int64 { return b.LoadStallFor(l, scheme) })
	return float64(stall) / float64(insts)
}

// EpsHist returns the suite-level epsilon histogram: unrestricted
// (Figure 6) when dynamic is true, block-restricted (Figure 7) otherwise.
func (r *Result) EpsHist(dynamic bool) *stats.Hist {
	h := stats.NewHist(epsBins)
	for i := range r.Benches {
		src := r.Benches[i].EpsBlock
		if dynamic {
			src = r.Benches[i].Eps
		}
		if src != nil {
			// Same bin count by construction.
			_ = h.Merge(src)
		}
	}
	return h
}

// btbPenalized returns the count of CTIs that pay the full delay plus the
// BTB fill stall: wrong direction, wrong target, or taken misses
// (outcomes 1-3).
func (r *Result) btbPenalized() int64 {
	return r.agg(func(b *BenchResult) int64 {
		return b.BTBOutcomes[1] + b.BTBOutcomes[2] + b.BTBOutcomes[3]
	})
}

// BTBStallPerCTIFor returns the BTB scheme's stall cycles per CTI for an
// architecture with d branch delay cycles: each penalized CTI costs the
// full delay plus the one-cycle fill stall, so one simulation pass covers
// every depth (Table 4's rows).
func (r *Result) BTBStallPerCTIFor(d int) float64 {
	ctis := r.agg(func(b *BenchResult) int64 { return b.CTIs })
	if ctis == 0 {
		return 0
	}
	bad := r.btbPenalized()
	return float64(bad*int64(d)+bad) / float64(ctis)
}

// BTBCPIComponentFor returns the BTB scheme's stall cycles per instruction
// for d branch delay cycles (Table 4's "CPI" column).
func (r *Result) BTBCPIComponentFor(d int) float64 {
	insts := r.agg(func(b *BenchResult) int64 { return b.Insts })
	if insts == 0 {
		return 0
	}
	bad := r.btbPenalized()
	return float64(bad*int64(d)+bad) / float64(insts)
}

// PredTakenFrac returns the fraction of executed CTIs statically predicted
// taken, and the accuracy within that class (Table 3).
func (r *Result) PredTakenFrac() (frac, accuracy float64) {
	ctis := r.agg(func(b *BenchResult) int64 { return b.CTIs })
	taken := r.agg(func(b *BenchResult) int64 { return b.PredTaken })
	right := r.agg(func(b *BenchResult) int64 { return b.PredTakenRight })
	if ctis == 0 || taken == 0 {
		return 0, 0
	}
	return float64(taken) / float64(ctis), float64(right) / float64(taken)
}

// PredNotTakenFrac mirrors PredTakenFrac for the not-taken class.
func (r *Result) PredNotTakenFrac() (frac, accuracy float64) {
	ctis := r.agg(func(b *BenchResult) int64 { return b.CTIs })
	nt := r.agg(func(b *BenchResult) int64 { return b.PredNotTaken })
	right := r.agg(func(b *BenchResult) int64 { return b.PredNotTakenRight })
	if ctis == 0 || nt == 0 {
		return 0, 0
	}
	return float64(nt) / float64(ctis), float64(right) / float64(nt)
}
