package cpisim

import (
	"fmt"

	"pipecache/internal/cache"
	"pipecache/internal/stats"
)

// Two-level hierarchy support. The paper's main experiments treat the L1
// miss penalty as a constant (the L2 always hits); the block diagram of
// Figure 1, however, shows a unified second-level cache between L1 and
// main memory. L2Config enables that substrate: L1 misses of a designated
// L1 pair probe a bank of unified L2 configurations, so one pass yields
// the L1+L2 cycle decomposition for every L2 size at once.
type L2Config struct {
	// Caches is the bank of unified L2 configurations to evaluate.
	Caches []cache.Config
	// IIndex and DIndex designate which L1 configurations feed the L2
	// (the L2 reference stream is the union of those two caches' misses).
	IIndex int
	DIndex int
}

// Enabled reports whether a two-level hierarchy was requested.
func (l L2Config) Enabled() bool { return len(l.Caches) > 0 }

// Validate checks the configuration against the L1 banks.
func (l L2Config) Validate(c Config) error {
	if !l.Enabled() {
		return nil
	}
	for _, cc := range l.Caches {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("cpisim: l2: %w", err)
		}
	}
	if l.IIndex < 0 || l.IIndex >= len(c.ICaches) {
		return fmt.Errorf("cpisim: l2 feeds missing icache %d", l.IIndex)
	}
	if l.DIndex < 0 || l.DIndex >= len(c.DCaches) {
		return fmt.Errorf("cpisim: l2 feeds missing dcache %d", l.DIndex)
	}
	return nil
}

// L2Result is the per-benchmark second-level accounting, indexed like the
// L2 bank.
type L2Result struct {
	Accesses int64
	Misses   []int64
}

// L2MissRatio returns local misses per L2 access for the indexed L2.
func (r *L2Result) L2MissRatio(idx int) float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses[idx]) / float64(r.Accesses)
}

// CPITwoLevel returns CPI for the designated L1 pair backed by the indexed
// L2: every L1 miss pays l2Hit cycles, and L2 misses pay a further mem
// cycles.
func (b *BenchResult) CPITwoLevel(l2idx int, cfg Config, l2Hit, mem int) float64 {
	if b.Insts == 0 || b.L2 == nil {
		return 0
	}
	cycles := b.Insts + b.BranchStall + b.FillStall + b.LoadStall
	l1Misses := b.IMisses[cfg.L2.IIndex] +
		b.DReadMisses[cfg.L2.DIndex] + b.DWriteMisses[cfg.L2.DIndex]
	cycles += l1Misses * int64(l2Hit)
	cycles += b.L2.Misses[l2idx] * int64(mem)
	return float64(cycles) / float64(b.Insts)
}

// CPITwoLevel returns the weighted harmonic mean CPI of the suite for the
// designated L1 pair backed by the indexed L2.
func (r *Result) CPITwoLevel(l2idx, l2Hit, mem int) (float64, error) {
	if len(r.Benches) == 0 {
		return 0, fmt.Errorf("cpisim: empty result")
	}
	vals := make([]float64, len(r.Benches))
	ws := make([]float64, len(r.Benches))
	for i := range r.Benches {
		vals[i] = r.Benches[i].CPITwoLevel(l2idx, r.Config, l2Hit, mem)
		ws[i] = r.Benches[i].Weight
	}
	return stats.WeightedHarmonicMean(vals, ws)
}

// L2MissRatio returns the suite-level local L2 miss ratio for the indexed
// L2 configuration.
func (r *Result) L2MissRatio(idx int) float64 {
	var acc, miss int64
	for i := range r.Benches {
		if l2 := r.Benches[i].L2; l2 != nil {
			acc += l2.Accesses
			miss += l2.Misses[idx]
		}
	}
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}
