package cpisim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pipecache/internal/cache"
	"pipecache/internal/interp"
	"pipecache/internal/stats"
	"pipecache/internal/trace"
)

// The sharded replay tier: one replay pass cut across workers, merged
// back bit-identically.
//
// A replay pass is a deterministic sequence of multiprogramming turns;
// every turn boundary is a block boundary of one benchmark's stream with
// every other benchmark parked on one too, so cutting the pass at turn
// boundaries splits it into segments whose event sequences concatenate
// to the sequential pass exactly. Per-benchmark counters are additive
// over segments, and the only cross-segment state is (a) each
// benchmark's pending delay-slot skip — a pure function of the event
// before the cut (PrevEvent) — and (b) the cache bank contents, which
// boundary-mode banks defer: each shard probes a cold bank that logs its
// first touches, and ShardChain resolves the logs against the carried
// state in shard order, attributing every late-resolved miss to the
// benchmark that probed (the probe tag). The merged counters and bank
// state are bit-identical to ReplayContext at any shard count and any
// GOMAXPROCS.
//
// Phases: walk (sequential, cheap — advance cursors through the turn
// schedule against a discarding sink and snapshot the cut states), shard
// (parallel — each worker replays its turn range on a boundary-bank
// clone), merge (sequential — absorb shard banks onto the carried banks
// in stream order and fold the per-benchmark counters).

// shardBoundary is one legal cut of the replay schedule: the full
// re-interleaving state at a turn boundary.
type shardBoundary struct {
	cursors   []trace.Cursor
	remaining []int64
	schedI    int   // next bench index in the round-robin sweep
	active    int   // benches with budget left
	skips     []int // per-bench pending delay-slot skip
	turns     int   // turns completed before this boundary
	insts     int64 // cumulative instructions replayed before this boundary
}

// discardSink consumes events without effect; the schedule walker uses
// it to advance cursors through the exact turn sequence of a pass.
type discardSink struct{}

func (discardSink) Events([]interp.Event)                    {}
func (discardSink) EventColumns([]uint8, []uint32, []uint32) {}

// pendingSkip reconstructs a benchmark's delay-slot state at a turn
// boundary from the stream alone: a pending skip exists exactly when the
// event before the cut is a taken CTI whose static prediction was taken,
// and its value is that CTI's precomputed handoff (zero for indirect
// jumps, which never replicate target instructions).
func pendingSkip(c *trace.Cursor, metas []blockMeta) int {
	kind, a, _, ok := c.PrevEvent()
	if !ok || interp.EventKind(kind) != interp.EvCTITaken {
		return 0
	}
	m := &metas[a]
	if !m.predTaken {
		return 0
	}
	return int(m.skip)
}

// shardableReplay reports whether this configuration can replay sharded:
// the specialized column loop must cover it (static scheme, no BTB, no
// L2, compact block tables) and every bank must be lane-packed
// (direct-mapped), the shape boundary mode supports.
func (s *Sim) shardableReplay() bool {
	if !s.fastSinkOK() {
		return false
	}
	for _, b := range s.benches {
		if b.ctis == nil {
			return false
		}
	}
	if s.ibank != nil && !s.ibank.AllPacked() {
		return false
	}
	if s.dbank != nil && !s.dbank.AllPacked() {
		return false
	}
	return true
}

// walkSchedule advances cursors through the pass's turn sequence against
// a discarding sink and returns every turn boundary, start and final
// state included. The sequence is ReplayContext's with the lone-workload
// whole-stream shortcut disabled: a single workload's turns concatenate
// into the same event sequence at any quantum, so per-quantum turns cut
// legally there too.
func (s *Sim) walkSchedule(instsPerBench int64, tr *trace.EventTrace) ([]shardBoundary, error) {
	n := len(s.benches)
	cursors := make([]trace.Cursor, n)
	for i := range cursors {
		cursors[i] = tr.Cursor(i)
	}
	remaining := make([]int64, n)
	for i := range remaining {
		remaining[i] = instsPerBench
	}
	active := n
	var total int64
	turns := 0
	var bounds []shardBoundary
	snap := func(schedI int) shardBoundary {
		b := shardBoundary{
			cursors:   append([]trace.Cursor(nil), cursors...),
			remaining: append([]int64(nil), remaining...),
			schedI:    schedI,
			active:    active,
			skips:     make([]int, n),
			turns:     turns,
			insts:     total,
		}
		for i := range b.skips {
			b.skips[i] = pendingSkip(&cursors[i], s.benches[i].ctis)
		}
		return b
	}
	bounds = append(bounds, snap(0))
	for active > 0 {
		for i := 0; i < n; i++ {
			if remaining[i] <= 0 {
				continue
			}
			q := s.cfg.Quantum
			if q > remaining[i] {
				q = remaining[i]
			}
			ran := cursors[i].Turn(q, nil, discardSink{})
			if ran == 0 {
				return nil, fmt.Errorf("cpisim: trace %q exhausted for %s with %d instructions remaining",
					tr.Key(), s.benches[i].prog.Name, remaining[i])
			}
			remaining[i] -= ran
			if remaining[i] <= 0 {
				active--
			}
			total += ran
			turns++
			bounds = append(bounds, snap(i+1))
		}
	}
	return bounds, nil
}

// shardSim builds a replay clone of s with cold boundary-mode banks: it
// shares the immutable per-workload tables (translation, block metas)
// and carries its own counters, sinks, and banks. No interpreters — the
// clone only ever replays.
func (s *Sim) shardSim() (*Sim, error) {
	sh := &Sim{cfg: s.cfg}
	var err error
	if s.ibank != nil {
		if sh.ibank, err = cache.NewBoundaryBank(s.cfg.ICaches); err != nil {
			return nil, err
		}
	}
	if s.dbank != nil {
		if sh.dbank, err = cache.NewBoundaryBank(s.cfg.DCaches); err != nil {
			if sh.ibank != nil {
				sh.ibank.Release()
			}
			return nil, err
		}
	}
	for _, b := range s.benches {
		bs := &benchState{prog: b.prog, seed: b.seed, xlat: b.xlat, slots: b.slots, prof: b.prof, ctis: b.ctis}
		bs.sink = &benchSink{s: sh, b: bs}
		bs.res.Name = b.res.Name
		bs.res.Weight = b.res.Weight
		bs.res.IMisses = make([]int64, len(s.cfg.ICaches))
		bs.res.DReadMisses = make([]int64, len(s.cfg.DCaches))
		bs.res.DWriteMisses = make([]int64, len(s.cfg.DCaches))
		bs.res.Eps = stats.NewHist(epsBins)
		bs.res.EpsBlock = stats.NewHist(epsBins)
		sh.benches = append(sh.benches, bs)
	}
	return sh, nil
}

// runShard replays the turns in [from, to) on a shard clone, starting
// from the cut state. Every probe is tagged with the benchmark index of
// the turn it belongs to, so late-resolved misses attribute correctly
// at merge time.
func (sh *Sim) runShard(ctx context.Context, tr *trace.EventTrace, from, to *shardBoundary) error {
	sh.replayAux = tr.Aux()
	defer func() { sh.replayAux = nil }()
	n := len(sh.benches)
	cursors := append([]trace.Cursor(nil), from.cursors...)
	remaining := append([]int64(nil), from.remaining...)
	active := from.active
	for i, b := range sh.benches {
		b.skip = from.skips[i]
	}
	target := to.insts - from.insts
	var done int64
	i := from.schedI
	for done < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		if active == 0 {
			return fmt.Errorf("cpisim: shard schedule underran its boundary")
		}
		if i == n {
			i = 0
		}
		if remaining[i] <= 0 {
			i++
			continue
		}
		q := sh.cfg.Quantum
		if q > remaining[i] {
			q = remaining[i]
		}
		if sh.ibank != nil {
			sh.ibank.SetProbeTag(uint32(i))
		}
		if sh.dbank != nil {
			sh.dbank.SetProbeTag(uint32(i))
		}
		ran := cursors[i].Turn(q, nil, sh.benches[i].sink)
		if ran == 0 {
			return fmt.Errorf("cpisim: trace %q exhausted for %s with %d instructions remaining",
				tr.Key(), sh.benches[i].prog.Name, remaining[i])
		}
		remaining[i] -= ran
		if remaining[i] <= 0 {
			active--
		}
		done += ran
		i++
	}
	if done != target {
		return fmt.Errorf("cpisim: shard overran its boundary by %d instructions", done-target)
	}
	return nil
}

// mergeBenchResult folds one shard's per-benchmark counters into dst.
// Every BenchResult field live under the sharded gate (static scheme, no
// BTB, no L2) is additive over stream segments; the histograms merge
// bin-wise (bin counts always match — both sides are built at epsBins).
func mergeBenchResult(dst, src *BenchResult) {
	dst.Insts += src.Insts
	dst.CTIs += src.CTIs
	dst.BranchStall += src.BranchStall
	dst.FillStall += src.FillStall
	dst.PredTaken += src.PredTaken
	dst.PredTakenRight += src.PredTakenRight
	dst.PredNotTaken += src.PredNotTaken
	dst.PredNotTakenRight += src.PredNotTakenRight
	dst.Loads += src.Loads
	dst.LoadUses += src.LoadUses
	dst.LoadStall += src.LoadStall
	dst.Eps.Merge(src.Eps)
	dst.EpsBlock.Merge(src.EpsBlock)
	dst.IFetches += src.IFetches
	dst.DReads += src.DReads
	dst.DWrites += src.DWrites
	for i := range dst.IMisses {
		dst.IMisses[i] += src.IMisses[i]
	}
	for i := range dst.DReadMisses {
		dst.DReadMisses[i] += src.DReadMisses[i]
	}
	for i := range dst.DWriteMisses {
		dst.DWriteMisses[i] += src.DWriteMisses[i]
	}
}

// replayShardedAt executes the sharded pass over explicit cut points:
// cuts indexes bounds, strictly increasing, starting at the first
// boundary and ending at the last. Split out from ReplayShardedContext
// so tests can pin bit-identity at every legal cut, degenerate ones
// included.
func (s *Sim) replayShardedAt(ctx context.Context, tr *trace.EventTrace, bounds []shardBoundary, cuts []int) (*Result, error) {
	nsh := len(cuts) - 1
	shards := make([]*Sim, nsh)
	for k := range shards {
		sh, err := s.shardSim()
		if err != nil {
			for _, p := range shards[:k] {
				p.Release()
			}
			return nil, err
		}
		shards[k] = sh
	}
	release := func() {
		for _, sh := range shards {
			sh.Release()
		}
	}

	// Phase A: replay every shard's turn range independently.
	errs := make([]error, nsh)
	var wg sync.WaitGroup
	for k := 0; k < nsh; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = shards[k].runShard(ctx, tr, &bounds[cuts[k]], &bounds[cuts[k+1]])
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			release()
			return nil, err
		}
	}

	// Phase B: absorb shard banks onto the carried banks in stream order,
	// attributing late-resolved misses by probe tag, and fold the
	// per-benchmark counters.
	var ic, dc *cache.ShardChain
	var err error
	if s.ibank != nil {
		ic, err = cache.NewShardChain(s.ibank, func(tag uint32, ci int, write bool) {
			s.benches[tag].res.IMisses[ci]++
		})
		if err != nil {
			release()
			return nil, err
		}
		defer ic.Release()
	}
	if s.dbank != nil {
		dc, err = cache.NewShardChain(s.dbank, func(tag uint32, ci int, write bool) {
			b := s.benches[tag]
			if write {
				b.res.DWriteMisses[ci]++
			} else {
				b.res.DReadMisses[ci]++
			}
		})
		if err != nil {
			release()
			return nil, err
		}
		defer dc.Release()
	}
	for _, sh := range shards {
		if ic != nil {
			if err := ic.Absorb(sh.ibank); err != nil {
				release()
				return nil, err
			}
		}
		if dc != nil {
			if err := dc.Absorb(sh.dbank); err != nil {
				release()
				return nil, err
			}
		}
		for i, b := range s.benches {
			mergeBenchResult(&b.res, &sh.benches[i].res)
		}
		sh.Release()
	}
	for i, b := range s.benches {
		b.skip = bounds[len(bounds)-1].skips[i]
	}

	res := &Result{Config: s.cfg}
	for _, b := range s.benches {
		res.Benches = append(res.Benches, b.res)
	}
	s.publish(res)
	return res, nil
}

// pickCuts selects up to workers shard ranges from the walked boundary
// list: the turn boundary nearest each k/workers fraction of the total
// instruction count, deduplicated (a short schedule yields fewer shards
// than workers).
func pickCuts(bounds []shardBoundary, workers int) []int {
	last := len(bounds) - 1
	total := bounds[last].insts
	cuts := []int{0}
	for k := 1; k < workers; k++ {
		target := total * int64(k) / int64(workers)
		j := sort.Search(len(bounds), func(j int) bool { return bounds[j].insts >= target })
		if j >= last {
			break
		}
		if j > cuts[len(cuts)-1] {
			cuts = append(cuts, j)
		}
	}
	return append(cuts, last)
}

// ReplaySharded is ReplayShardedContext without cancellation.
func (s *Sim) ReplaySharded(instsPerBench int64, tr *trace.EventTrace, workers int) (*Result, error) {
	return s.ReplayShardedContext(context.Background(), instsPerBench, tr, workers)
}

// ReplayShardedContext is ReplayContext cut across workers: the pass's
// turn schedule is split into up to workers contiguous segments, each
// segment replays concurrently against boundary-mode bank clones, and
// the segments merge back in stream order. The Result, the carried bank
// statistics, and the published counters are bit-identical to
// ReplayContext at any worker count and any GOMAXPROCS.
//
// Configurations outside the sharded gate — a non-static branch scheme,
// a BTB, a second level, or a set-associative configuration in either
// bank — and worker counts below two fall back to the sequential
// ReplayContext transparently. Error semantics match ReplayContext: a
// validation or exhaustion error leaves the simulator in an undefined
// intermediate state.
func (s *Sim) ReplayShardedContext(ctx context.Context, instsPerBench int64, tr *trace.EventTrace, workers int) (*Result, error) {
	if workers <= 1 || !s.shardableReplay() {
		return s.ReplayContext(ctx, instsPerBench, tr)
	}
	if instsPerBench <= 0 {
		return nil, fmt.Errorf("cpisim: non-positive instruction budget")
	}
	if err := checkTraceLive(tr); err != nil {
		return nil, err
	}
	names := make([]string, len(s.benches))
	seeds := make([]uint64, len(s.benches))
	for i, b := range s.benches {
		names[i] = b.prog.Name
		seeds[i] = b.seed
	}
	if err := tr.Validate(instsPerBench, names, seeds); err != nil {
		return nil, err
	}
	bounds, err := s.walkSchedule(instsPerBench, tr)
	if err != nil {
		return nil, err
	}
	cuts := pickCuts(bounds, workers)
	if len(cuts) < 3 {
		// One shard would just be the sequential pass with extra steps.
		return s.ReplayContext(ctx, instsPerBench, tr)
	}
	return s.replayShardedAt(ctx, tr, bounds, cuts)
}
