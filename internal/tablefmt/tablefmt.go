// Package tablefmt renders the experiment results as aligned ASCII tables
// and simple text charts, the output format of the benchmark harness.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// RowStrings appends a pre-formatted row.
func (t *Table) RowStrings(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		// Trim trailing padding.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		var rule []string
		for i := 0; i < cols; i++ {
			rule = append(rule, strings.Repeat("-", widths[i]))
		}
		writeRow(rule)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one line of a Chart.
type Series struct {
	Name string
	Y    []float64
}

// Chart renders families of curves (the paper's figures) as a data table
// plus an ASCII plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Add appends a series; its Y values must align with X.
func (c *Chart) Add(name string, y []float64) error {
	if len(y) != len(c.X) {
		return fmt.Errorf("tablefmt: series %q has %d points for %d x-values", name, len(y), len(c.X))
	}
	c.Series = append(c.Series, Series{Name: name, Y: y})
	return nil
}

// String renders the chart: a column-per-series data table followed by an
// ASCII plot.
func (c *Chart) String() string {
	headers := []string{c.XLabel}
	for _, s := range c.Series {
		headers = append(headers, s.Name)
	}
	t := New(c.Title, headers...)
	for i, x := range c.X {
		cells := []any{trimFloat(x)}
		for _, s := range c.Series {
			cells = append(cells, s.Y[i])
		}
		t.Row(cells...)
	}
	return t.String() + c.plot()
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.2f", x)
}

// plot renders an ASCII scatter of all series (marker per series).
func (c *Chart) plot() string {
	const width, height = 60, 16
	if len(c.X) == 0 || len(c.Series) == 0 {
		return ""
	}
	minX, maxX := c.X[0], c.X[0]
	for _, x := range c.X {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	minY, maxY := c.Series[0].Y[0], c.Series[0].Y[0]
	for _, s := range c.Series {
		for _, y := range s.Y {
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := "*+ox#@%&"
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i, x := range c.X {
			px := int((x - minX) / (maxX - minX) * float64(width-1))
			py := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - py
			grid[row][px] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "\n%s (y: %.3g..%.3g)\n", c.YLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width+1) + "\n")
	fmt.Fprintf(&b, "  %s: %.3g..%.3g   legend:", c.XLabel, minX, maxX)
	for si, s := range c.Series {
		fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
