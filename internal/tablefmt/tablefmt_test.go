package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.Row("a", 1)
	tb.Row("longer", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line %q", lines[1])
	}
	if !strings.Contains(out, "2.500") {
		t.Fatalf("float not formatted: %q", out)
	}
	// Columns aligned: "a" padded to width of "longer".
	if !strings.HasPrefix(lines[3], "a       1") {
		t.Fatalf("row alignment: %q", lines[3])
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := New("")
	tb.RowStrings("x", "y")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Fatalf("leading blank line: %q", out)
	}
	if !strings.Contains(out, "x  y") {
		t.Fatalf("row missing: %q", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Row("1")
	tb.Row("1", "2", "3", "4")
	out := tb.String()
	if !strings.Contains(out, "4") {
		t.Fatalf("extra cell dropped: %q", out)
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{Title: "Fig", XLabel: "size", YLabel: "cpi", X: []float64{1, 2, 4}}
	if err := c.Add("b=0", []float64{1.5, 1.2, 1.1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("b=1", []float64{1.6, 1.3, 1.15}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	for _, want := range []string{"Fig", "size", "b=0", "b=1", "1.500", "legend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestChartRejectsMismatchedSeries(t *testing.T) {
	c := &Chart{X: []float64{1, 2}}
	if err := c.Add("bad", []float64{1}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestChartEmptySafe(t *testing.T) {
	c := &Chart{Title: "empty", XLabel: "x", YLabel: "y"}
	if out := c.String(); out == "" {
		t.Fatal("no output at all")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{Title: "const", XLabel: "x", YLabel: "y", X: []float64{1, 2}}
	c.Add("flat", []float64{3.5, 3.5})
	if out := c.String(); !strings.Contains(out, "3.500") {
		t.Fatalf("constant series broken: %q", out)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4) != "4" || trimFloat(2.5) != "2.50" {
		t.Fatal("trimFloat formatting")
	}
}
