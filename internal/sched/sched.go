// Package sched implements the paper's object-code post-processor for
// delayed branches with optional squashing (Section 3.1).
//
// For an architecture with b branch delay slots, each control transfer
// instruction (CTI) is followed by b delay slots. The post-processor fills
// them in three ways, mirroring the paper's four-step procedure:
//
//  1. r slots are filled by hoisting the CTI over the r independent
//     instructions that precede it in its basic block (always useful, never
//     squashed);
//  2. the remaining s = b - r slots are filled from the predicted path:
//     instructions replicated from the branch target for CTIs statically
//     predicted taken (code expansion!), or the fall-through instructions
//     for CTIs predicted not-taken (no replication needed);
//  3. for register-indirect jumps the target is unknown at compile time, so
//     the s slots hold noops.
//
// Static prediction follows the paper: backward conditional branches and
// all direct jumps/calls are predicted taken, forward conditional branches
// not-taken.
//
// The result is a Translation: the per-block address mapping, delay-slot
// bookkeeping, and static code expansion that the trace-driven simulator
// applies to the instruction fetch stream — the in-memory equivalent of the
// paper's translation files.
package sched

import (
	"fmt"

	"pipecache/internal/isa"
	"pipecache/internal/program"
)

// BlockXlat is the translation record for one basic block.
type BlockXlat struct {
	// NewAddr is the block's entry address in the translated layout.
	NewAddr uint32
	// NewLen is the block's translated instruction count, including
	// replicated delay-slot instructions and noops.
	NewLen int
	// HasCTI reports whether the block ends in a CTI.
	HasCTI bool
	// R is the number of delay slots filled by hoisting the CTI (useful on
	// both paths).
	R int
	// S is the number of delay slots filled from the predicted path and
	// squashed on a misprediction.
	S int
	// Noops is the number of delay slots filled with noops
	// (register-indirect jumps only); they are always wasted.
	Noops int
	// PredTaken is the static prediction of the terminating CTI.
	PredTaken bool
	// Indirect marks register-indirect CTIs.
	Indirect bool
	// CTIAddr is the translated address of the CTI itself.
	CTIAddr uint32
}

// Translation maps a program onto an architecture with B branch delay
// slots.
type Translation struct {
	B      int
	Blocks []BlockXlat // indexed by block ID

	// OrigWords and NewWords are the static code sizes before and after
	// delay-slot insertion.
	OrigWords int
	NewWords  int
}

// Expansion returns the fractional static code size increase, the quantity
// of Table 2.
func (t *Translation) Expansion() float64 {
	if t.OrigWords == 0 {
		return 0
	}
	return float64(t.NewWords-t.OrigWords) / float64(t.OrigWords)
}

// xlatKey memoizes heuristic translations per program (see Translate).
type xlatKey struct{ b int }

// Translate builds the translation of p for an architecture with b branch
// delay slots with optional squashing. b = 0 returns the identity
// translation. The program must be validated and laid out.
//
// The result is memoized on the program: a Translation is a pure function
// of (program, slot count) and read-only after construction, so sweeps
// that build one simulator per pass share a single translation per slot
// count instead of re-running the post-processor. Profiled translations
// (TranslateProfiled) are rebuilt per call, as they depend on the profile
// and edit the translation in place.
func Translate(p *program.Program, b int) (*Translation, error) {
	if b < 0 {
		return nil, fmt.Errorf("sched: negative delay slots %d", b)
	}
	v, err := p.Memo(xlatKey{b}, func() (any, error) { return translate(p, b) })
	if err != nil {
		return nil, err
	}
	return v.(*Translation), nil
}

// translate is the uncached post-processor; TranslateProfiled starts from
// it so the copy it mutates is private.
func translate(p *program.Program, b int) (*Translation, error) {
	t := &Translation{
		B:      b,
		Blocks: make([]BlockXlat, len(p.Blocks)),
	}

	// Pass 1: per-block slot allocation and lengths.
	for id, blk := range p.Blocks {
		x := &t.Blocks[id]
		x.NewLen = len(blk.Insts)
		t.OrigWords += len(blk.Insts)

		term, ok := blk.Terminator()
		if !ok {
			continue
		}
		x.HasCTI = true
		x.R = program.CTIMovable(blk)
		if x.R > b {
			x.R = b
		}
		rest := b - x.R

		switch term.Op.Class() {
		case isa.ClassBranch:
			// Backward branches predicted taken, forward not-taken.
			x.PredTaken = p.Block(blk.Taken) != nil && p.Block(blk.Taken).Addr <= blk.Addr
			x.S = rest
			if x.PredTaken {
				// Replicated target instructions extend the block.
				x.NewLen += x.S
			}
			// Not-taken prediction: the s slots are the fall-through
			// instructions already laid out after the block; no growth.
		case isa.ClassJump:
			// Direct jumps and calls always go to the target: predicted
			// taken, slots replicated from the target.
			x.PredTaken = true
			x.S = rest
			x.NewLen += x.S
		case isa.ClassJumpReg:
			// Target unknown at compile time: noops.
			x.Indirect = true
			x.PredTaken = true // they always transfer control
			x.Noops = rest
			x.NewLen += x.Noops
		}
		t.NewWords += x.NewLen - len(blk.Insts)
	}
	t.NewWords += t.OrigWords

	// Pass 2: translated layout, following the original procedure order.
	addr := p.Base
	for _, proc := range p.Procs {
		for _, id := range proc.Blocks {
			x := &t.Blocks[id]
			x.NewAddr = addr
			if x.HasCTI {
				// The CTI sits before its delay-slot instructions: at
				// origLen-1 + (slots hoisted over stay put)... after
				// hoisting by R the CTI occupies position origLen-1-R,
				// with the R hoisted instructions and then the S/noop
				// slots after it.
				origLen := len(p.Blocks[id].Insts)
				x.CTIAddr = addr + uint32(origLen-1-x.R)
			}
			addr += uint32(x.NewLen)
		}
	}
	return t, nil
}

// WastedSlots returns the delay cycles wasted by the CTI of block id given
// the actual outcome: squashed slots on a misprediction, the noop slots of
// an indirect jump, or zero when the prediction was right.
func (t *Translation) WastedSlots(id int, taken bool) int {
	x := &t.Blocks[id]
	if !x.HasCTI {
		return 0
	}
	if x.Indirect {
		return x.Noops
	}
	if x.PredTaken != taken {
		return x.S
	}
	return 0
}

// Fetches returns how many instruction fetches entering block id produces
// and from which translated address, given how many of its leading
// instructions already executed in the delay slots of a correctly
// predicted-taken CTI (skip). If skip exceeds the block length the paper
// pads with noops, so no fetches remain.
func (t *Translation) Fetches(id, skip int) (addr uint32, n int) {
	x := &t.Blocks[id]
	if skip >= x.NewLen {
		return x.NewAddr + uint32(x.NewLen), 0
	}
	return x.NewAddr + uint32(skip), x.NewLen - skip
}
