package sched

import (
	"fmt"

	"pipecache/internal/isa"
	"pipecache/internal/program"
)

// Apply materializes the delay-slot schedule as actual code: it returns a
// transformed copy of the program in which every CTI has been hoisted over
// its r independent predecessors and followed by its delay-slot
// instructions — replicas of the predicted path for predicted-taken CTIs,
// explicit noops for register-indirect jumps. Predicted-not-taken CTIs get
// no materialized slots (their delay slots are the sequential instructions
// already laid out after them).
//
// The translation tables (Translate) describe this transformation without
// performing it; Apply performs it, and the static-equivalence tests check
// the two against each other. The transformed program is also what the
// disassembler shows when inspecting a scheduled binary.
//
// The returned program is laid out but is not a valid simulation input:
// delay-slot replicas duplicate control-flow-reachable instructions, so
// Validate would reject CTIs in non-terminal positions if the CTI moved.
// Use it for inspection and size accounting.
func Apply(p *program.Program, b int) (*program.Program, *Translation, error) {
	t, err := Translate(p, b)
	if err != nil {
		return nil, nil, err
	}
	q := p.Clone()
	for id, blk := range q.Blocks {
		x := &t.Blocks[id]
		if !x.HasCTI {
			continue
		}
		n := len(blk.Insts)
		cti := blk.Insts[n-1]

		// Hoist the CTI over its r movable predecessors: the CTI moves up
		// by R positions and the hoisted instructions shift down into its
		// delay slots.
		pos := n - 1 - x.R
		copy(blk.Insts[pos+1:], blk.Insts[pos:n-1])
		blk.Insts[pos] = cti

		switch {
		case x.Indirect && x.Noops > 0:
			// Register-indirect: pad with noops.
			for i := 0; i < x.Noops; i++ {
				blk.Insts = append(blk.Insts, program.Inst{Inst: isa.Nop()})
			}
		case x.PredTaken && x.S > 0:
			// Predicted taken: replicate the first S instructions of the
			// target path as the ORIGINAL program laid them out (padding
			// with noops past the target block or where the target path
			// itself transfers control).
			target := p.Block(targetBlock(p, id))
			for i := 0; i < x.S; i++ {
				if target != nil && i < len(target.Insts) && !target.Insts[i].IsCTI() {
					blk.Insts = append(blk.Insts, target.Insts[i])
				} else {
					blk.Insts = append(blk.Insts, program.Inst{Inst: isa.Nop()})
				}
			}
		}
		if len(blk.Insts) != x.NewLen {
			return nil, nil, fmt.Errorf("sched: block %d materialized to %d words, translation says %d",
				id, len(blk.Insts), x.NewLen)
		}
	}
	if err := q.Layout(); err != nil {
		return nil, nil, err
	}
	return q, t, nil
}

// targetBlock resolves where a block's CTI transfers when taken.
func targetBlock(p *program.Program, id int) int {
	blk := p.Block(id)
	term, ok := blk.Terminator()
	if !ok {
		return program.None
	}
	switch term.Op.Class() {
	case isa.ClassBranch:
		return blk.Taken
	case isa.ClassJump:
		if term.Op == isa.JAL {
			if blk.CallProc >= 0 && blk.CallProc < len(p.Procs) {
				return p.Procs[blk.CallProc].Entry
			}
			return program.None
		}
		return blk.Taken
	default:
		return blk.Taken
	}
}
