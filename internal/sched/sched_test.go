package sched

import (
	"math"
	"testing"

	"pipecache/internal/gen"
	"pipecache/internal/isa"
	"pipecache/internal/program"
)

// buildBranchy constructs a program with known structure:
//
//	p0: b0 (3 alu + backward-taken branch to itself, fall to b1)
//	    b1 (1 alu + forward branch over b2 to b3, fall to b2)
//	    b2 (2 alu, falls to b3)
//	    b3 (jr return)
func buildBranchy(t *testing.T) *program.Program {
	t.Helper()
	bd := program.NewBuilder("branchy", 0x100)
	main := bd.StartProc("main")
	b0 := bd.NewBlock()
	b1 := bd.NewBlock()
	b2 := bd.NewBlock()
	b3 := bd.NewBlock()

	// b0: three independent ALU ops then a branch on an untouched reg:
	// fully hoistable (r = min(b,3)).
	bd.ALU(b0, isa.ADDU, isa.T0, isa.A0, isa.A1)
	bd.ALU(b0, isa.ADDU, isa.T1, isa.A2, isa.A3)
	bd.ALU(b0, isa.ADDU, isa.T2, isa.A0, isa.A2)
	bd.Branch(b0, isa.BNE, isa.T9, isa.Zero, b0, b1, 0.9) // backward

	// b1: condition computed immediately before the branch: r = 0.
	bd.ALU(b1, isa.SLT, isa.T9, isa.T0, isa.T1)
	bd.Branch(b1, isa.BEQ, isa.T9, isa.Zero, b3, b2, 0.3) // forward

	bd.ALU(b2, isa.ADDU, isa.T3, isa.T0, isa.T1)
	bd.ALU(b2, isa.ADDU, isa.T4, isa.T0, isa.T2)
	bd.Fallthrough(b2, b3)

	bd.Return(b3)

	bd.SetEntry(main)
	p, err := bd.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p.Data = program.DataLayout{GPBase: 0x10000, GPSize: 64, StackBase: 0x20000, FrameSize: 64}
	return p
}

func TestTranslateZeroSlotsIsIdentity(t *testing.T) {
	p := buildBranchy(t)
	tr, err := Translate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Expansion() != 0 {
		t.Fatalf("expansion = %g", tr.Expansion())
	}
	for id, b := range p.Blocks {
		x := tr.Blocks[id]
		if x.NewAddr != b.Addr || x.NewLen != len(b.Insts) {
			t.Fatalf("block %d: xlat %+v vs addr 0x%x len %d", id, x, b.Addr, len(b.Insts))
		}
		if x.R != 0 || x.S != 0 || x.Noops != 0 {
			t.Fatalf("block %d: nonzero slots at b=0: %+v", id, x)
		}
	}
}

func TestTranslateSlotAllocation(t *testing.T) {
	p := buildBranchy(t)
	tr, err := Translate(p, 2)
	if err != nil {
		t.Fatal(err)
	}

	// b0: backward branch, fully hoistable: r=2, s=0, predicted taken, no
	// growth.
	x0 := tr.Blocks[0]
	if !x0.HasCTI || x0.R != 2 || x0.S != 0 || !x0.PredTaken {
		t.Fatalf("b0 xlat %+v", x0)
	}
	if x0.NewLen != 4 {
		t.Fatalf("b0 NewLen = %d, want 4", x0.NewLen)
	}

	// b1: forward branch, r=0 (condition right before), predicted
	// not-taken: s=2, no growth (slots are the sequential instructions).
	x1 := tr.Blocks[1]
	if x1.R != 0 || x1.S != 2 || x1.PredTaken {
		t.Fatalf("b1 xlat %+v", x1)
	}
	if x1.NewLen != 2 {
		t.Fatalf("b1 NewLen = %d, want 2", x1.NewLen)
	}

	// b3: register-indirect return: movable over nothing (single inst),
	// r=0, 2 noops appended.
	x3 := tr.Blocks[3]
	if !x3.Indirect || x3.Noops != 2 || x3.NewLen != 3 {
		t.Fatalf("b3 xlat %+v", x3)
	}
}

func TestTranslatePredictedTakenGrowth(t *testing.T) {
	// A backward branch with r=0 must replicate s target instructions.
	bd := program.NewBuilder("x", 0)
	main := bd.StartProc("main")
	b0 := bd.NewBlock()
	bd.ALU(b0, isa.SLT, isa.T9, isa.T0, isa.T1)
	bd.Branch(b0, isa.BNE, isa.T9, isa.Zero, b0, b1Stub(bd), 0.9)
	bd.SetEntry(main)
	p, err := bd.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tr.Blocks[0]
	if x.R != 0 || x.S != 3 || !x.PredTaken {
		t.Fatalf("xlat %+v", x)
	}
	if x.NewLen != 2+3 {
		t.Fatalf("NewLen = %d, want 5", x.NewLen)
	}
	if tr.NewWords <= tr.OrigWords {
		t.Fatal("no code growth recorded")
	}
}

// b1Stub adds a terminated successor block so the builder's edges resolve.
func b1Stub(bd *program.Builder) int {
	b := bd.NewBlock()
	bd.Return(b)
	return b
}

func TestTranslateLayoutContiguous(t *testing.T) {
	p := buildBranchy(t)
	tr, err := Translate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	addr := p.Base
	for _, proc := range p.Procs {
		for _, id := range proc.Blocks {
			x := tr.Blocks[id]
			if x.NewAddr != addr {
				t.Fatalf("block %d at 0x%x, want 0x%x", id, x.NewAddr, addr)
			}
			addr += uint32(x.NewLen)
		}
	}
	if int(addr-p.Base) != tr.NewWords {
		t.Fatalf("layout covers %d words, NewWords %d", addr-p.Base, tr.NewWords)
	}
}

func TestCTIAddrAfterHoisting(t *testing.T) {
	p := buildBranchy(t)
	tr, _ := Translate(p, 2)
	// b0: CTI hoisted over 2 instructions: position origLen-1-2 = 1.
	x0 := tr.Blocks[0]
	if x0.CTIAddr != x0.NewAddr+1 {
		t.Fatalf("b0 CTIAddr = 0x%x, want NewAddr+1", x0.CTIAddr)
	}
	// b1: not hoisted: position 1 of 2.
	x1 := tr.Blocks[1]
	if x1.CTIAddr != x1.NewAddr+1 {
		t.Fatalf("b1 CTIAddr = 0x%x", x1.CTIAddr)
	}
}

func TestWastedSlots(t *testing.T) {
	p := buildBranchy(t)
	tr, _ := Translate(p, 2)
	// b0 predicted taken, s=0: nothing wasted either way.
	if tr.WastedSlots(0, true) != 0 || tr.WastedSlots(0, false) != 0 {
		t.Fatal("b0 should waste nothing (all slots hoisted)")
	}
	// b1 predicted not-taken with s=2: taken wastes 2, not-taken 0.
	if got := tr.WastedSlots(1, true); got != 2 {
		t.Fatalf("b1 taken waste = %d, want 2", got)
	}
	if got := tr.WastedSlots(1, false); got != 0 {
		t.Fatalf("b1 not-taken waste = %d, want 0", got)
	}
	// b3 indirect: 2 noops always wasted.
	if got := tr.WastedSlots(3, true); got != 2 {
		t.Fatalf("b3 waste = %d, want 2", got)
	}
	// b2 has no CTI.
	if got := tr.WastedSlots(2, true); got != 0 {
		t.Fatalf("b2 waste = %d", got)
	}
}

func TestFetches(t *testing.T) {
	p := buildBranchy(t)
	tr, _ := Translate(p, 2)
	x2 := tr.Blocks[2]
	addr, n := tr.Fetches(2, 0)
	if addr != x2.NewAddr || n != x2.NewLen {
		t.Fatalf("full fetch: 0x%x/%d", addr, n)
	}
	addr, n = tr.Fetches(2, 1)
	if addr != x2.NewAddr+1 || n != x2.NewLen-1 {
		t.Fatalf("skip 1: 0x%x/%d", addr, n)
	}
	// Skip beyond the block: nothing left (padded with noops).
	_, n = tr.Fetches(2, x2.NewLen+1)
	if n != 0 {
		t.Fatalf("overskip: %d fetches", n)
	}
}

func TestTranslateRejectsNegative(t *testing.T) {
	p := buildBranchy(t)
	if _, err := Translate(p, -1); err == nil {
		t.Fatal("negative b accepted")
	}
}

func TestExpansionMonotonic(t *testing.T) {
	// More delay slots never shrink the code.
	p := buildBranchy(t)
	prev := -1.0
	for b := 0; b <= 3; b++ {
		tr, err := Translate(p, b)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Expansion() < prev {
			t.Fatalf("expansion decreased at b=%d", b)
		}
		prev = tr.Expansion()
	}
}

func TestTable2ExpansionShape(t *testing.T) {
	// Table 2: the benchmark-suite average code growth is 6%, 14%, 23% for
	// 1-3 slots. Check our synthetic suite lands in that neighbourhood and
	// grows superlinearly-ish.
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []string{"gcc", "yacc", "espresso", "loops"}
	var exp [4]float64
	for _, name := range specs {
		s, _ := gen.LookupSpec(name)
		p, err := gen.Build(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		for b := 1; b <= 3; b++ {
			tr, err := Translate(p, b)
			if err != nil {
				t.Fatal(err)
			}
			exp[b] += tr.Expansion() / float64(len(specs))
		}
	}
	// Generous bands around Table 2's 0.06 / 0.14 / 0.23.
	if exp[1] < 0.012 || exp[1] > 0.12 {
		t.Errorf("1-slot expansion %.3f, Table 2 says ~0.06", exp[1])
	}
	if exp[2] < 0.06 || exp[2] > 0.24 {
		t.Errorf("2-slot expansion %.3f, Table 2 says ~0.14", exp[2])
	}
	if exp[3] < 0.10 || exp[3] > 0.36 {
		t.Errorf("3-slot expansion %.3f, Table 2 says ~0.23", exp[3])
	}
	if !(exp[1] < exp[2] && exp[2] < exp[3]) {
		t.Errorf("expansion not increasing: %v", exp)
	}
}

func TestPredictionMixShape(t *testing.T) {
	// The paper: ~60% of CTIs statically predicted taken.
	if testing.Short() {
		t.Skip("short mode")
	}
	s, _ := gen.LookupSpec("gcc")
	p, err := gen.Build(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var taken, total int
	for _, x := range tr.Blocks {
		if !x.HasCTI {
			continue
		}
		total++
		if x.PredTaken {
			taken++
		}
	}
	frac := float64(taken) / float64(total)
	if math.Abs(frac-0.6) > 0.2 {
		t.Errorf("static predicted-taken fraction %.2f, paper ~0.6", frac)
	}
}

func TestFirstSlotFillRate(t *testing.T) {
	// The paper: the compiler fills 54% of first delay slots from before
	// the CTI (r >= 1).
	if testing.Short() {
		t.Skip("short mode")
	}
	s, _ := gen.LookupSpec("gcc")
	p, err := gen.Build(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var filled, total int
	for _, x := range tr.Blocks {
		if !x.HasCTI {
			continue
		}
		total++
		if x.R >= 1 {
			filled++
		}
	}
	frac := float64(filled) / float64(total)
	if frac < 0.35 || frac > 0.75 {
		t.Errorf("first-slot fill rate %.2f, paper ~0.54", frac)
	}
}

func TestApplyMatchesTranslation(t *testing.T) {
	// The materialized code and the translation tables are two
	// implementations of the same transformation: every block's length
	// and address must agree, as must the whole-program size.
	p := buildBranchy(t)
	for b := 0; b <= 3; b++ {
		q, tr, err := Apply(p, b)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		for id, blk := range q.Blocks {
			x := tr.Blocks[id]
			if len(blk.Insts) != x.NewLen {
				t.Fatalf("b=%d block %d: %d insts vs NewLen %d", b, id, len(blk.Insts), x.NewLen)
			}
			if blk.Addr != x.NewAddr {
				t.Fatalf("b=%d block %d: addr 0x%x vs NewAddr 0x%x", b, id, blk.Addr, x.NewAddr)
			}
		}
		if q.NumInsts() != tr.NewWords {
			t.Fatalf("b=%d: program %d words vs NewWords %d", b, q.NumInsts(), tr.NewWords)
		}
	}
}

func TestApplyHoistsCTI(t *testing.T) {
	p := buildBranchy(t)
	q, tr, err := Apply(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// b0's branch hoisted over 2 instructions: now at position 1.
	b0 := q.Blocks[0]
	if !b0.Insts[1].IsCTI() {
		t.Fatalf("CTI not hoisted: %v", b0.Insts)
	}
	// The hoisted instructions follow it in its delay slots.
	if b0.Insts[2].IsCTI() || b0.Insts[3].IsCTI() {
		t.Fatal("delay slots contain CTIs")
	}
	// CTIAddr agrees with the materialized position.
	if tr.Blocks[0].CTIAddr != b0.Addr+1 {
		t.Fatalf("CTIAddr 0x%x vs materialized 0x%x", tr.Blocks[0].CTIAddr, b0.Addr+1)
	}
}

func TestApplyInsertsNoopsForIndirect(t *testing.T) {
	p := buildBranchy(t)
	q, tr, err := Apply(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// b3 is the jr return; it gains Noops noop words at the end.
	b3 := q.Blocks[3]
	x := tr.Blocks[3]
	if x.Noops == 0 {
		t.Fatal("no noops scheduled for jr")
	}
	for i := len(b3.Insts) - x.Noops; i < len(b3.Insts); i++ {
		if b3.Insts[i].Op != isa.NOP {
			t.Fatalf("slot %d is %v, want noop", i, b3.Insts[i].Inst)
		}
	}
}

func TestApplyReplicatesTargetPath(t *testing.T) {
	// A predicted-taken branch with unfillable slots replicates the first
	// S instructions of its target.
	bd := program.NewBuilder("rep", 0)
	main := bd.StartProc("main")
	b0 := bd.NewBlock()
	bd.ALU(b0, isa.SLT, isa.T9, isa.T0, isa.T1)
	bd.Branch(b0, isa.BNE, isa.T9, isa.Zero, b0, b1Stub(bd), 0.9)
	bd.SetEntry(main)
	p, err := bd.Finish()
	if err != nil {
		t.Fatal(err)
	}
	q, tr, err := Apply(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tr.Blocks[0]
	if x.S != 2 {
		t.Fatalf("S = %d", x.S)
	}
	// The target is the block itself: its first instruction is the slt.
	got := q.Blocks[0].Insts
	if got[len(got)-2].Op != isa.SLT {
		t.Fatalf("first replica = %v, want the target's slt", got[len(got)-2].Inst)
	}
	// Second replica would be the branch itself: padded with a noop.
	if got[len(got)-1].Op != isa.NOP {
		t.Fatalf("second replica = %v, want noop", got[len(got)-1].Inst)
	}
}

func TestApplyOnGeneratedBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, _ := gen.LookupSpec("yacc")
	p, err := gen.Build(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 3} {
		q, tr, err := Apply(p, b)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if q.NumInsts() != tr.NewWords {
			t.Fatalf("b=%d: %d vs %d", b, q.NumInsts(), tr.NewWords)
		}
	}
}
