package sched

import (
	"testing"

	"pipecache/internal/gen"
	"pipecache/internal/isa"
	"pipecache/internal/program"
)

// buildBiased builds a program with a forward branch that is actually
// taken 90% of the time: the heuristic predicts it not-taken, the profile
// flips it.
func buildBiased(t *testing.T) *program.Program {
	t.Helper()
	bd := program.NewBuilder("biased", 0x100)
	main := bd.StartProc("main")
	b0 := bd.NewBlock()
	b1 := bd.NewBlock()
	b2 := bd.NewBlock()

	bd.ALU(b0, isa.ADDU, isa.T0, isa.A0, isa.A1)
	bd.ALU(b0, isa.SLT, isa.T9, isa.T0, isa.A1)
	bd.Branch(b0, isa.BNE, isa.T9, isa.Zero, b2, b1, 0.9) // forward, usually taken

	bd.ALU(b1, isa.ADDU, isa.T1, isa.A2, isa.A3)
	bd.Fallthrough(b1, b2)

	bd.ALU(b2, isa.ADDU, isa.T2, isa.A0, isa.A2)
	bd.Jump(b2, b0)

	bd.SetEntry(main)
	p, err := bd.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p.Data = program.DataLayout{GPBase: 0x10000, GPSize: 64, StackBase: 0x20000, FrameSize: 64}
	return p
}

func TestCollectProfileMeasuresBias(t *testing.T) {
	p := buildBiased(t)
	prof, err := CollectProfile(p, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	frac, ok := prof.TakenFrac(0)
	if !ok {
		t.Fatal("branch block not observed")
	}
	if frac < 0.8 || frac > 1.0 {
		t.Fatalf("taken fraction %.2f, behaviour says 0.9", frac)
	}
	// The jump block is always taken.
	if f, ok := prof.TakenFrac(2); !ok || f != 1 {
		t.Fatalf("jump taken fraction %v/%v", f, ok)
	}
	// Unobserved/out-of-range blocks report absence.
	if _, ok := prof.TakenFrac(99); ok {
		t.Fatal("phantom block observed")
	}
}

func TestTranslateProfiledFlipsBiasedBranch(t *testing.T) {
	p := buildBiased(t)
	prof, err := CollectProfile(p, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Translate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := TranslateProfiled(p, 2, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Heuristic: forward branch predicted not-taken. Profile: taken.
	if plain.Blocks[0].PredTaken {
		t.Fatal("heuristic predicted forward branch taken")
	}
	if !profiled.Blocks[0].PredTaken {
		t.Fatal("profile did not flip the biased branch")
	}
	// Flipping to predicted-taken replicates the S target instructions.
	if profiled.Blocks[0].NewLen != plain.Blocks[0].NewLen+plain.Blocks[0].S {
		t.Fatalf("NewLen %d, want %d", profiled.Blocks[0].NewLen,
			plain.Blocks[0].NewLen+plain.Blocks[0].S)
	}
	if profiled.NewWords <= plain.NewWords-1 {
		t.Fatal("code size accounting not adjusted")
	}
}

func TestTranslateProfiledLayoutConsistent(t *testing.T) {
	p := buildBiased(t)
	prof, err := CollectProfile(p, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TranslateProfiled(p, 3, prof)
	if err != nil {
		t.Fatal(err)
	}
	addr := p.Base
	for _, proc := range p.Procs {
		for _, id := range proc.Blocks {
			if tr.Blocks[id].NewAddr != addr {
				t.Fatalf("block %d at 0x%x, want 0x%x", id, tr.Blocks[id].NewAddr, addr)
			}
			addr += uint32(tr.Blocks[id].NewLen)
		}
	}
	if int(addr-p.Base) != tr.NewWords {
		t.Fatalf("layout %d words vs NewWords %d", addr-p.Base, tr.NewWords)
	}
}

func TestTranslateProfiledNilProfile(t *testing.T) {
	p := buildBiased(t)
	a, err := Translate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TranslateProfiled(p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("nil profile changed block %d", i)
		}
	}
}

func TestProfiledPredictionImprovesAccuracy(t *testing.T) {
	// On a generated benchmark, profile-guided prediction must mispredict
	// no more often (by executed CTIs) than the heuristic.
	if testing.Short() {
		t.Skip("short mode")
	}
	s, _ := gen.LookupSpec("espresso")
	p, err := gen.Build(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := CollectProfile(p, s.Seed+1, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Translate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := TranslateProfiled(p, 1, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both predictors against a fresh execution profile.
	eval, err := CollectProfile(p, s.Seed+2, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	score := func(tr *Translation) (right, total int64) {
		for id := range p.Blocks {
			ex := eval.Executions[id]
			if ex == 0 || !tr.Blocks[id].HasCTI {
				continue
			}
			taken := eval.Takens[id]
			total += ex
			if tr.Blocks[id].PredTaken {
				right += taken
			} else {
				right += ex - taken
			}
		}
		return
	}
	hr, ht := score(plain)
	pr, pt := score(profiled)
	if ht != pt {
		t.Fatalf("different CTI totals %d vs %d", ht, pt)
	}
	heur := float64(hr) / float64(ht)
	profAcc := float64(pr) / float64(pt)
	if profAcc < heur-0.002 {
		t.Fatalf("profiled accuracy %.4f below heuristic %.4f", profAcc, heur)
	}
}
