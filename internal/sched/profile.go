package sched

import (
	"fmt"

	"pipecache/internal/interp"
	"pipecache/internal/isa"
	"pipecache/internal/program"
)

// Profile-guided static prediction. The paper's delayed-branch results use
// the backward-taken/forward-not-taken heuristic and note that "static
// branch prediction techniques using sophisticated program profiling ...
// are competitive with much larger BTBs" [HCC89, KT91]. This file provides
// that upgrade: measure each branch's bias on a training run, then
// predict each CTI in its biased direction.

// Profile holds per-block branch bias measured on a training run.
type Profile struct {
	// Executions and Takens are indexed by block ID; blocks that never
	// executed have zero counts and fall back to the heuristic.
	Executions []int64
	Takens     []int64
}

// TakenFrac returns the measured taken fraction of block id's CTI and
// whether the block was observed at all.
func (pr *Profile) TakenFrac(id int) (float64, bool) {
	if id < 0 || id >= len(pr.Executions) || pr.Executions[id] == 0 {
		return 0, false
	}
	return float64(pr.Takens[id]) / float64(pr.Executions[id]), true
}

// profileCollector adapts the interpreter event stream.
type profileCollector struct {
	prof *Profile
}

func (c *profileCollector) Block(b *program.Block)                              {}
func (c *profileCollector) Mem(b *program.Block, idx int, a uint32, store bool) {}
func (c *profileCollector) LoadUse(eps, epsBlock int)                           {}
func (c *profileCollector) CTI(b *program.Block, taken bool) {
	c.prof.Executions[b.ID]++
	if taken {
		c.prof.Takens[b.ID]++
	}
}

// profKey memoizes collected profiles per program (see CollectProfile).
type profKey struct {
	seed  uint64
	insts int64
}

// CollectProfile executes insts instructions of the program and returns
// its branch bias profile. Use a different seed than the evaluation run to
// model training/evaluation input separation (the paper's profiling
// references trained and measured on different inputs).
//
// The profile is memoized on the program: the interpreter stream is a pure
// function of (program, seed), so a training run with the same budget
// always yields the same counts, and repeated studies share one immutable
// Profile instead of re-interpreting. Callers must not mutate the result.
func CollectProfile(p *program.Program, seed uint64, insts int64) (*Profile, error) {
	v, err := p.Memo(profKey{seed, insts}, func() (any, error) { return collectProfile(p, seed, insts) })
	if err != nil {
		return nil, err
	}
	return v.(*Profile), nil
}

func collectProfile(p *program.Program, seed uint64, insts int64) (*Profile, error) {
	it, err := interp.New(p, seed)
	if err != nil {
		return nil, fmt.Errorf("sched: profiling: %w", err)
	}
	prof := &Profile{
		Executions: make([]int64, len(p.Blocks)),
		Takens:     make([]int64, len(p.Blocks)),
	}
	it.Run(insts, &profileCollector{prof: prof})
	return prof, nil
}

// TranslateProfiled is Translate with each conditional branch predicted in
// its profiled direction; unobserved branches use the backward/forward
// heuristic. Jumps, calls, and register-indirect CTIs are unaffected.
// xlatProfKey memoizes profiled translations per program. Profiles are
// keyed by identity: they are immutable once collected (CollectProfile
// returns a shared memoized instance), so one pointer means one set of
// predictions.
type xlatProfKey struct {
	b    int
	prof *Profile
}

func TranslateProfiled(p *program.Program, b int, prof *Profile) (*Translation, error) {
	if b < 0 {
		return nil, fmt.Errorf("sched: negative delay slots %d", b)
	}
	if prof == nil {
		return Translate(p, b)
	}
	v, err := p.Memo(xlatProfKey{b, prof}, func() (any, error) { return translateProfiled(p, b, prof) })
	if err != nil {
		return nil, err
	}
	return v.(*Translation), nil
}

func translateProfiled(p *program.Program, b int, prof *Profile) (*Translation, error) {
	// A private, uncached translation: the profile pass below edits it in
	// place; once memoized it is shared read-only like Translate's.
	t, err := translate(p, b)
	if err != nil {
		return nil, err
	}
	// Re-resolve conditional branch predictions, then redo the layout
	// pass since predicted-taken branches replicate target instructions.
	for id, blk := range p.Blocks {
		x := &t.Blocks[id]
		if !x.HasCTI || x.Indirect {
			continue
		}
		// Only conditional branches have a prediction choice; jumps and
		// calls always transfer.
		term, _ := blk.Terminator()
		if term.Op.Class() != isa.ClassBranch {
			continue
		}
		frac, ok := prof.TakenFrac(id)
		if !ok {
			continue
		}
		// Predicting taken is the costlier direction: its delay slots
		// replicate target instructions (code growth, extra cold misses)
		// and short targets force pad noops. Flip toward taken only on a
		// clear majority; flip toward not-taken at the break-even point.
		newPred := x.PredTaken
		if !x.PredTaken && frac >= 0.6 {
			newPred = true
		}
		if x.PredTaken && frac < 0.5 {
			newPred = false
		}
		if newPred == x.PredTaken {
			continue
		}
		// Adjust the block's growth: predicted-taken branches carry S
		// replicated words, predicted-not-taken none.
		if newPred {
			x.NewLen += x.S
			t.NewWords += x.S
		} else {
			x.NewLen -= x.S
			t.NewWords -= x.S
		}
		x.PredTaken = newPred
	}
	// Recompute the translated layout with the adjusted lengths.
	addr := p.Base
	for _, proc := range p.Procs {
		for _, id := range proc.Blocks {
			x := &t.Blocks[id]
			x.NewAddr = addr
			if x.HasCTI {
				origLen := len(p.Blocks[id].Insts)
				x.CTIAddr = addr + uint32(origLen-1-x.R)
			}
			addr += uint32(x.NewLen)
		}
	}
	return t, nil
}
