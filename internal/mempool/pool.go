// Package mempool provides size-classed pools for the flat slabs the
// replay tier allocates per pass: cache bank tables, holder maps, dirty
// arrays, and shard scratch. A design-space sweep builds and discards
// thousands of simulator instances over identical geometries, so the same
// few slab sizes recycle endlessly; pooling them makes the steady-state
// replay loop allocation-free.
//
// Slabs are pooled by power-of-two capacity class. Get returns a slab of
// exactly the requested length (backed by the class capacity) with
// zeroed contents; Put recycles one for any later Get of the same class.
package mempool

import (
	"math/bits"
	"sync"
)

// maxClass bounds the pooled capacity at 1<<maxClass elements per slab;
// larger requests fall through to plain allocation.
const maxClass = 24

func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// pools is one size-class ladder: pools[c] holds slabs of capacity 1<<c.
type pools[T any] struct {
	classes [maxClass + 1]sync.Pool
}

func (p *pools[T]) get(n int) []T {
	if n == 0 {
		return nil
	}
	c := class(n)
	if c > maxClass {
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		s := v.([]T)[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		return s
	}
	return make([]T, n, 1<<c)
}

func (p *pools[T]) put(s []T) {
	c := bits.Len(uint(cap(s)))
	if cap(s) == 0 || cap(s)&(cap(s)-1) != 0 {
		return // not one of ours; let the GC have it
	}
	c-- // cap is a power of two: class is its exact log2
	if c > maxClass {
		return
	}
	p.classes[c].Put(s[:cap(s)])
}

var (
	u64Pools  pools[uint64]
	u32Pools  pools[uint32]
	i32Pools  pools[int32]
	boolPools pools[bool]
	u16Pools  pools[uint16]
)

// Uint64s returns a zeroed []uint64 of length n from the pool.
func Uint64s(n int) []uint64 { return u64Pools.get(n) }

// PutUint64s recycles a slab obtained from Uint64s.
func PutUint64s(s []uint64) { u64Pools.put(s) }

// Uint32s returns a zeroed []uint32 of length n from the pool.
func Uint32s(n int) []uint32 { return u32Pools.get(n) }

// PutUint32s recycles a slab obtained from Uint32s.
func PutUint32s(s []uint32) { u32Pools.put(s) }

// Int32s returns a zeroed []int32 of length n from the pool.
func Int32s(n int) []int32 { return i32Pools.get(n) }

// PutInt32s recycles a slab obtained from Int32s.
func PutInt32s(s []int32) { i32Pools.put(s) }

// Bools returns a zeroed []bool of length n from the pool.
func Bools(n int) []bool { return boolPools.get(n) }

// PutBools recycles a slab obtained from Bools.
func PutBools(s []bool) { boolPools.put(s) }

// Uint16s returns a zeroed []uint16 of length n from the pool.
func Uint16s(n int) []uint16 { return u16Pools.get(n) }

// PutUint16s recycles a slab obtained from Uint16s.
func PutUint16s(s []uint16) { u16Pools.put(s) }
