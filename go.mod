module pipecache

go 1.22
