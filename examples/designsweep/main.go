// Designsweep: the paper's Section 5 multilevel optimization on a
// sub-suite — sweep pipeline depth and cache size, print the TPI surface
// and the optimal design, and compare static versus dynamic load
// scheduling.
//
// Run with: go run ./examples/designsweep
package main

import (
	"fmt"
	"log"

	"pipecache/internal/core"
	"pipecache/internal/cpisim"
	"pipecache/internal/gen"
)

func main() {
	var specs []gen.Spec
	for _, name := range []string{"gcc", "espresso", "yacc", "loops", "matrix500", "tex"} {
		s, ok := gen.LookupSpec(name)
		if !ok {
			log.Fatalf("spec %s missing", name)
		}
		specs = append(specs, s)
	}
	suite, err := core.BuildSuite(specs)
	if err != nil {
		log.Fatal(err)
	}
	params := core.DefaultParams()
	params.Insts = 400_000
	lab, err := core.NewLab(suite, params)
	if err != nil {
		log.Fatal(err)
	}

	fig12, err := lab.Figure12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig12)

	var pts []core.TPIPoint
	for depth := 0; depth <= 3; depth++ {
		best := core.TPIPoint{TPINs: 1e18}
		for _, side := range params.SizesKW {
			pt, err := lab.TPI(depth, depth, side, side, cpisim.LoadStatic, params.L2TimeNs)
			if err != nil {
				log.Fatal(err)
			}
			if pt.TPINs < best.TPINs {
				best = pt
			}
		}
		pts = append(pts, best)
	}
	fmt.Println(core.SummaryTable("Best design per pipeline depth", pts))

	opt, err := lab.BestDesign(params.L2TimeNs, cpisim.LoadStatic, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall optimum (static loads):  %s\n", opt.Best)
	optDyn, err := lab.BestDesign(params.L2TimeNs, cpisim.LoadDynamic, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall optimum (dynamic loads): %s\n", optDyn.Best)

	be, err := lab.DynamicBreakEven(optDyn.Best.B, optDyn.Best.L,
		optDyn.Best.ISizeKW, optDyn.Best.DSizeKW, params.L2TimeNs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic out-of-order load issue may stretch tCPU by at most %.1f%%\n", 100*be)
	fmt.Println("before it loses to static scheduling (the paper's ~10% figure).")
}
