// Tracegen: write a multiprogrammed reference trace to disk — the 1992
// workflow — then read it back and replay it against two cache
// configurations.
//
// Run with: go run ./examples/tracegen
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pipecache/internal/cache"
	"pipecache/internal/gen"
	"pipecache/internal/interp"
	"pipecache/internal/program"
	"pipecache/internal/sched"
	"pipecache/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "pipecache-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Capture per-benchmark traces with one branch delay slot encoded in
	// the fetch stream.
	names := []string{"espresso", "linpack"}
	var files []string
	for i, name := range names {
		spec, ok := gen.LookupSpec(name)
		if !ok {
			log.Fatalf("spec %s missing", name)
		}
		prog, err := gen.Build(spec, uint32((i+1)<<26))
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, name+".pct")
		if err := capture(prog, spec.Seed, uint8(i), path); err != nil {
			log.Fatal(err)
		}
		files = append(files, path)
		fmt.Printf("captured %s -> %s\n", name, path)
	}

	// Mix them into one multiprogrammed trace, 20k records per quantum.
	mixed := filepath.Join(dir, "mixed.pct")
	if err := mix(mixed, files); err != nil {
		log.Fatal(err)
	}

	// Replay against a small and a large cache pair in ONE pass: the fused
	// bank kernel probes every configuration per reference (ReplayBank),
	// instead of re-reading the trace per configuration.
	sizes := []int{1, 16}
	var cfgs []cache.Config
	for _, kw := range sizes {
		cfgs = append(cfgs, cache.Config{SizeKW: kw, BlockWords: 4, Assoc: 1, WriteBack: true})
	}
	ibank, err := cache.NewBank(cfgs)
	if err != nil {
		log.Fatal(err)
	}
	dbank, err := cache.NewBank(cfgs)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(mixed)
	if err != nil {
		log.Fatal(err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	st, err := trace.ReplayBank(r, ibank, dbank)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplayed %d refs once (PCT%d: %d fetch / %d load / %d store)\n",
		st.Refs, r.Version(), st.IFetches, st.Loads, st.Stores)
	for i, kw := range sizes {
		fmt.Printf("  %2dKW caches: L1-I miss ratio %.2f%%   L1-D miss ratio %.2f%%\n",
			kw, 100*ibank.Stats(i).MissRatio(), 100*dbank.Stats(i).MissRatio())
	}
}

func capture(prog *program.Program, seed uint64, pid uint8, path string) error {
	xlat, err := sched.Translate(prog, 1)
	if err != nil {
		return err
	}
	it, err := interp.New(prog, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	cap := &trace.Capture{W: w, Xlat: xlat, PID: pid}
	it.Run(200_000, cap)
	if cap.Err() != nil {
		return cap.Err()
	}
	return w.Flush()
}

func mix(out string, files []string) error {
	var readers []*trace.Reader
	var handles []*os.File
	for _, p := range files {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		handles = append(handles, f)
		r, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		readers = append(readers, r)
	}
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	if err := trace.Mix(w, 20_000, readers...); err != nil {
		return err
	}
	fmt.Printf("mixed %d traces into %s (%d records)\n", len(files), out, w.Count())
	return nil
}
