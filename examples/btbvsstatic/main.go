// Btbvsstatic: the Section 3.1 comparison — delayed branches with optional
// squashing (compile-time) against a 256-entry branch-target buffer
// (hardware) — on branchy integer workloads.
//
// Run with: go run ./examples/btbvsstatic
package main

import (
	"fmt"
	"log"

	"pipecache/internal/core"
	"pipecache/internal/gen"
	"pipecache/internal/tablefmt"
)

func main() {
	var specs []gen.Spec
	for _, name := range []string{"gcc", "yacc", "nroff", "espresso"} {
		s, ok := gen.LookupSpec(name)
		if !ok {
			log.Fatalf("spec %s missing", name)
		}
		specs = append(specs, s)
	}
	suite, err := core.BuildSuite(specs)
	if err != nil {
		log.Fatal(err)
	}
	params := core.DefaultParams()
	params.Insts = 400_000
	lab, err := core.NewLab(suite, params)
	if err != nil {
		log.Fatal(err)
	}

	t3, err := lab.Table3()
	if err != nil {
		log.Fatal(err)
	}
	t4, err := lab.Table4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3)
	fmt.Println(t4)

	cmp := tablefmt.New("Static delayed branches vs 256-entry BTB",
		"Delay cycles", "Static cycles/CTI", "BTB cycles/CTI", "Winner")
	for i := range t3.Rows {
		s := t3.Rows[i].CyclesPerCTI
		b := t4.Rows[i].CyclesPerCTI
		winner := "static"
		if b < s {
			winner = "btb"
		}
		cmp.Row(i+1, fmt.Sprintf("%.2f", s), fmt.Sprintf("%.2f", b), winner)
	}
	fmt.Println(cmp)

	t2, err := lab.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)
	fmt.Println("The paper's conclusion: the static scheme matches or beats the small")
	fmt.Println("BTB, at the price of the code expansion above — which costs extra")
	fmt.Println("instruction cache misses on small caches (Figure 3).")
}
