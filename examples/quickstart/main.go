// Quickstart: synthesize one benchmark, simulate one pipelined-cache
// design point, and print its CPI decomposition and TPI.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pipecache/internal/cache"
	"pipecache/internal/cpisim"
	"pipecache/internal/gen"
	"pipecache/internal/timing"
)

func main() {
	// 1. Synthesize the "gcc" benchmark from its Table 1 statistics.
	spec, ok := gen.LookupSpec("gcc")
	if !ok {
		log.Fatal("gcc spec missing")
	}
	prog, err := gen.Build(spec, 0x1000000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s: %d instructions, %d blocks, %d procedures\n",
		prog.Name, prog.NumInsts(), len(prog.Blocks), len(prog.Procs))

	// 2. Simulate a design with 2 branch and 2 load delay slots (a cache
	// pipelined over two stages) and 8KW split caches.
	cfg := cpisim.Config{
		BranchSlots: 2,
		LoadSlots:   2,
		ICaches:     []cache.Config{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
		DCaches:     []cache.Config{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
	}
	sim, err := cpisim.New(cfg, []cpisim.Workload{{Prog: prog, Seed: spec.Seed, Weight: 1}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(500_000)
	if err != nil {
		log.Fatal(err)
	}

	b := &res.Benches[0]
	const penalty = 10
	fmt.Printf("\ninstructions: %d\n", b.Insts)
	fmt.Printf("branch stall cycles: %d (%.3f per CTI)\n", b.BranchStall, b.BranchStallPerCTI())
	fmt.Printf("load stall cycles:   %d (%.3f per load)\n", b.LoadStall, b.LoadStallPerLoad())
	fmt.Printf("L1-I miss ratio:     %.2f%%\n", 100*b.IMissRatio(0))
	fmt.Printf("L1-D miss ratio:     %.2f%%\n", 100*b.DMissRatio(0))
	cpi := b.CPI(0, 0, penalty, penalty)
	fmt.Printf("CPI (P=%d):          %.3f\n", penalty, cpi)

	// 3. Combine with the timing model: TPI = CPI x tCPU.
	model := timing.DefaultModel()
	tcpu, err := model.TCPUSplit(8, 2, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tCPU:                %.2f ns (two pipeline stages per cache side)\n", tcpu)
	fmt.Printf("TPI:                 %.2f ns\n", cpi*tcpu)
}
