// Associativity: evaluate the paper's closing conjecture — that pipelining
// the cache access makes set associativity worthwhile — through the public
// API.
//
// "If tCPU is less dependent on the access time of pipelined L1 caches,
// then increasing the associativity of the cache to lower the miss ratio
// will have a larger performance benefit for pipelined caches."
//
// Run with: go run ./examples/associativity
package main

import (
	"fmt"
	"log"

	"pipecache"
)

func main() {
	var specs []pipecache.Spec
	for _, name := range []string{"gcc", "tex", "espresso", "loops"} {
		s, ok := pipecache.LookupBenchmark(name)
		if !ok {
			log.Fatalf("benchmark %s missing", name)
		}
		specs = append(specs, s)
	}
	suite, err := pipecache.BuildSuite(specs)
	if err != nil {
		log.Fatal(err)
	}
	params := pipecache.DefaultParams()
	params.Insts = 400_000
	lab, err := pipecache.NewLab(suite, params)
	if err != nil {
		log.Fatal(err)
	}

	study, err := lab.AssocStudy(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(study)

	for _, depth := range []int{0, 2, 3} {
		best := study.Best(depth)
		verdict := "direct-mapped wins: the associativity mux stretches the cycle"
		if best.Assoc > 1 {
			verdict = fmt.Sprintf("%d-way wins: pipelining hides the mux delay", best.Assoc)
		}
		fmt.Printf("depth %d: %s (TPI %.2f ns)\n", depth, verdict, best.TPINs)
	}
	fmt.Println("\nThe conjecture from the paper's conclusion holds: associativity")
	fmt.Println("pays off once the cache access is pipelined deep enough that the")
	fmt.Println("ALU loop, not the cache, sets the cycle time.")
}
