# pipecache - ISCA 1992 pipelined primary cache study reproduction

GO ?= go

.PHONY: all build test race vet bench bench-full bench-json fuzz chaos tables figures sweep ablations metrics serve bake golden ci clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The race-detector package list shared with CI: concurrency-bearing
# packages, including the sharded-replay tier (cpisim) and the boundary
# banks it merges (cache).
RACE_PKGS = ./internal/server ./internal/core ./internal/obs ./internal/trace \
	./internal/fault ./internal/chaos ./internal/surface ./internal/cluster \
	./internal/cpisim ./internal/cache

# One iteration of every paper table/figure benchmark plus microbenches.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run xxx .

# Full-fidelity benchmark run (longer traces).
bench-full:
	PIPECACHE_BENCH_INSTS=2000000 $(GO) test -bench=. -benchmem -benchtime=1x -run xxx .

# Machine-readable simulator benchmark summary (archived by CI per commit).
# The floor is the pre-lane-pack replay throughput: dipping below it means
# the compiled-plan/lane-packed replay tier's gains have been lost entirely.
REPLAY_FLOOR ?= 70000000
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_sim.json -replay-floor $(REPLAY_FLOOR)

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/isa/
	$(GO) test -fuzz FuzzParseInst -fuzztime 30s ./internal/isa/
	$(GO) test -fuzz FuzzReader -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzParseCircuit -fuzztime 30s ./internal/timing/
	$(GO) test -fuzz FuzzDesignRequest -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzParsePlan -fuzztime 30s ./internal/fault/
	$(GO) test -fuzz FuzzSurfaceReader -fuzztime 30s ./internal/surface/

# Chaos suite: the ablation cross-product and the HTTP service under seeded
# deterministic fault schedules, race detector on (see DESIGN.md §12).
# Override the seed matrix to replay a failing seed:
#   PIPECACHE_CHAOS_SEEDS=0xbad make chaos
PIPECACHE_CHAOS_SEEDS ?= 1,2,3
chaos:
	PIPECACHE_CHAOS_SEEDS=$(PIPECACHE_CHAOS_SEEDS) $(GO) test -race -count=1 -v ./internal/chaos
	$(GO) test -race -count=1 -run 'TestSurfaceDifferential|TestSurfaceBackfillFault|TestSurfacePolicyFallback' ./internal/surface ./internal/server

tables:
	$(GO) run ./cmd/pipecache tables

figures:
	$(GO) run ./cmd/pipecache figures

sweep:
	$(GO) run ./cmd/pipecache sweep

ablations:
	$(GO) run ./cmd/pipecache ablations

# Instrumented smoke run: a small sweep with the observability layer on,
# printing the metrics snapshot.
metrics:
	$(GO) run ./cmd/pipecache metrics -insts 100000 -benchmarks gcc,yacc

# Serve the design space over HTTP/JSON (see README "Serving").
serve:
	$(GO) run ./cmd/pipecache serve -addr :8080

# Bake the full design space into a PSF1 surface artifact; serve it with
# `pipecache serve -surface surface.psf1` (see README "Baking").
bake:
	$(GO) run ./cmd/pipecache bake -out surface.psf1

# Regenerate the golden files after an intended behaviour change.
golden:
	$(GO) test ./internal/core -run TestGolden -update
	$(GO) test ./internal/server -run TestGolden -update
	$(GO) test ./internal/surface -run TestGolden -update

# The full gate CI runs: format check, vet, build, tests, race.
ci:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

clean:
	$(GO) clean ./...
	rm -f trace.pct test_output.txt bench_output.txt
