package pipecache

// Integration tests of the public API: the paths a downstream user takes.

import (
	"strings"
	"sync"
	"testing"
)

var (
	apiOnce   sync.Once
	apiLab    *Lab
	apiLabErr error
)

// apiTestLab builds a small suite once for the API tests.
func apiTestLab(t *testing.T) *Lab {
	t.Helper()
	apiOnce.Do(func() {
		var specs []Spec
		for _, name := range []string{"espresso", "linpack"} {
			s, ok := LookupBenchmark(name)
			if !ok {
				apiLabErr = errMissing(name)
				return
			}
			specs = append(specs, s)
		}
		suite, err := BuildSuite(specs)
		if err != nil {
			apiLabErr = err
			return
		}
		p := DefaultParams()
		p.Insts = 150_000
		apiLab, apiLabErr = NewLab(suite, p)
	})
	if apiLabErr != nil {
		t.Fatal(apiLabErr)
	}
	return apiLab
}

type errMissing string

func (e errMissing) Error() string { return "missing benchmark " + string(e) }

func TestPublicSuiteHasSixteenBenchmarks(t *testing.T) {
	if got := len(Benchmarks()); got != 16 {
		t.Fatalf("Benchmarks() = %d entries, want 16", got)
	}
	if _, ok := LookupBenchmark("gcc"); !ok {
		t.Fatal("gcc missing")
	}
}

func TestPublicSimulationPath(t *testing.T) {
	// The quickstart path: build, simulate, inspect.
	spec, _ := LookupBenchmark("small")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(SimConfig{
		BranchSlots: 1,
		LoadSlots:   1,
		ICaches:     []CacheConfig{{SizeKW: 4, BlockWords: 4, Assoc: 1, WriteBack: true}},
		DCaches:     []CacheConfig{{SizeKW: 4, BlockWords: 4, Assoc: 1, WriteBack: true}},
	}, []Workload{{Prog: prog, Seed: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	cpi := res.Benches[0].CPI(0, 0, 10, 10)
	if cpi <= 1 || cpi > 5 {
		t.Fatalf("CPI = %g out of plausible range", cpi)
	}
}

func TestPublicTimingPath(t *testing.T) {
	m := DefaultTimingModel()
	tcpu, err := m.TCPU(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tcpu < 3.5 || tcpu > 12 {
		t.Fatalf("tCPU = %g", tcpu)
	}
	fp := PlanFloor(m.Chips(8), m.MCM.PitchCm)
	if fp.Chips != 8 || fp.MaxWireCm <= 0 {
		t.Fatalf("floorplan %+v", fp)
	}
	if RefillPenalty(16, 2) != 10 {
		t.Fatal("RefillPenalty(16,2) != 10")
	}
}

func TestPublicTranslatePath(t *testing.T) {
	spec, _ := LookupBenchmark("yacc")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Expansion() <= 0 {
		t.Fatalf("expansion = %g", tr.Expansion())
	}
}

func TestPublicLabExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	l := apiTestLab(t)
	t2, err := l.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2.String(), "Table 2") {
		t.Fatal("Table 2 rendering")
	}
	fig, err := l.Figure4(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Labels) != 4 {
		t.Fatalf("Figure 4 has %d series", len(fig.Labels))
	}
	pt, err := l.TPI(2, 2, 8, 8, LoadStatic, l.P.L2TimeNs)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TPINs <= 0 {
		t.Fatalf("TPI point %+v", pt)
	}
}

func TestPublicBTBPath(t *testing.T) {
	b, err := NewBTB(PaperBTB())
	if err != nil {
		t.Fatal(err)
	}
	b.Resolve(100, true, 500)
	if p := b.Lookup(100); !p.Hit {
		t.Fatal("BTB did not learn")
	}
}

func TestPublicAssemblerPath(t *testing.T) {
	in, err := ParseInst("lw $t0, 4($sp)")
	if err != nil {
		t.Fatal(err)
	}
	w, err := EncodeWord(in, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWord(w, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != "lw $t0, 4($sp)" {
		t.Fatalf("round trip: %q", back.String())
	}
}

func TestPublicImageAndDisasm(t *testing.T) {
	spec, _ := LookupBenchmark("small")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	img, err := EncodeImage(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != prog.NumInsts() {
		t.Fatalf("image %d words", len(img))
	}
	var sb strings.Builder
	if err := Disassemble(prog, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "main:") {
		t.Fatal("listing missing main")
	}
}

func TestPublicScheduleApply(t *testing.T) {
	spec, _ := LookupBenchmark("small")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, tr, err := ApplySchedule(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumInsts() != tr.NewWords {
		t.Fatalf("materialized %d vs %d", q.NumInsts(), tr.NewWords)
	}
	prof, err := CollectProfile(prog, 99, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TranslateProfiled(prog, 2, prof); err != nil {
		t.Fatal(err)
	}
}

func TestPublicParseCircuit(t *testing.T) {
	g, err := ParseCircuit(strings.NewReader("latch a\npath a a 3.5"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.MinPeriod()
	if err != nil || p != 3.5 {
		t.Fatalf("period %g err %v", p, err)
	}
}
