// Package pipecache is a trace-driven simulation and timing-analysis
// library reproducing "Performance Optimization of Pipelined Primary
// Caches" (Kunle Olukotun, Trevor Mudge, Richard Brown; ISCA 1992).
//
// The paper asks how deeply the access to a primary (L1) cache should be
// pipelined: deeper pipelining shortens the CPU cycle time tCPU = tL1/d but
// adds branch and load delay slots that raise CPI. The library provides
// every piece of the study's methodology:
//
//   - a synthetic benchmark suite calibrated to the paper's Table 1
//     workload statistics (Benchmarks, BuildProgram);
//   - a deterministic interpreter and multiprogrammed, multi-configuration
//     CPI simulator — the paper's cacheSIM (NewSim, SimConfig);
//   - the delayed-branch post-processor with optional squashing and its
//     translation tables (Translate);
//   - a 256-entry branch-target buffer (NewBTB);
//   - set-associative instruction/data cache models (NewCache);
//   - the GaAs SRAM + MCM access-time macro-model and a latch-level
//     minimum-cycle-time analyzer — the paper's minTcpu (TimingModel);
//   - the Section 5 TPI = CPI x tCPU design-space optimization and every
//     table and figure of the evaluation (NewLab and the Lab methods).
//
// # Quick start
//
//	suite, _ := pipecache.BuildSuite(pipecache.Benchmarks())
//	lab, _ := pipecache.NewLab(suite, pipecache.DefaultParams())
//	fig12, _ := lab.Figure12()     // TPI vs total L1 size, b=l=0..3
//	fmt.Println(fig12)
//	opt, _ := lab.BestDesign(lab.P.L2TimeNs, pipecache.LoadStatic, false)
//	fmt.Println(opt.Best)          // the paper's 2-3 stage optimum
//
// All simulation is deterministic: the same inputs produce bit-identical
// results on every machine.
package pipecache

import (
	"context"
	"io"

	"pipecache/internal/btb"
	"pipecache/internal/cache"
	"pipecache/internal/cluster"
	"pipecache/internal/core"
	"pipecache/internal/cpisim"
	"pipecache/internal/gen"
	"pipecache/internal/interp"
	"pipecache/internal/isa"
	"pipecache/internal/obs"
	"pipecache/internal/program"
	"pipecache/internal/sched"
	"pipecache/internal/server"
	"pipecache/internal/surface"
	"pipecache/internal/timing"
	"pipecache/internal/trace"
)

// Benchmark synthesis (internal/gen).
type (
	// Spec describes one benchmark to synthesize; see Benchmarks for the
	// paper's Table 1 suite.
	Spec = gen.Spec
	// Program is a synthesized benchmark: a control-flow graph with the
	// behavioural metadata the simulator needs.
	Program = program.Program
)

// Benchmarks returns the 16-benchmark suite of the paper's Table 1.
func Benchmarks() []Spec { return gen.Table1() }

// LookupBenchmark finds a Table 1 benchmark by name.
func LookupBenchmark(name string) (Spec, bool) { return gen.LookupSpec(name) }

// BuildProgram synthesizes one benchmark at the given word-address base.
func BuildProgram(spec Spec, base uint32) (*Program, error) { return gen.Build(spec, base) }

// Interpreter (internal/interp).
type (
	// Interp executes a Program deterministically, producing the dynamic
	// event stream (see Handler).
	Interp = interp.Interp
	// Handler receives the interpreter's event stream.
	Handler = interp.Handler
	// Collector is a Handler accumulating workload statistics.
	Collector = interp.Collector
)

// NewInterp returns an interpreter over p seeded with seed.
func NewInterp(p *Program, seed uint64) (*Interp, error) { return interp.New(p, seed) }

// NewCollector returns a statistics collector with the given epsilon
// histogram size.
func NewCollector(epsBins int) *Collector { return interp.NewCollector(epsBins) }

// Delay-slot scheduling (internal/sched).
type (
	// Translation maps a program onto an architecture with B branch delay
	// slots with optional squashing.
	Translation = sched.Translation
)

// Translate builds the delay-slot translation of p for b branch delay
// slots.
func Translate(p *Program, b int) (*Translation, error) { return sched.Translate(p, b) }

// Caches (internal/cache).
type (
	// CacheConfig describes one cache (size in K-words, block size in
	// words, associativity, write policy).
	CacheConfig = cache.Config
	// Cache is a set-associative cache model with LRU replacement.
	Cache = cache.Cache
	// CacheBank is a fused bank of cache configurations: one probe
	// evaluates every configuration and returns a miss bitmask. The CPI
	// simulator runs its multi-configuration banks on this kernel.
	CacheBank = cache.Bank
)

// NewCache builds a cache.
func NewCache(cfg CacheConfig) (*Cache, error) { return cache.New(cfg) }

// NewCacheBank fuses up to 64 cache configurations into one single-pass
// bank.
func NewCacheBank(cfgs []CacheConfig) (*CacheBank, error) { return cache.NewBank(cfgs) }

// RefillPenalty returns the paper's refill penalty model: a 2-cycle startup
// plus blockWords/wordsPerCycle transfer cycles.
func RefillPenalty(blockWords, wordsPerCycle int) int {
	return cache.RefillPenalty(blockWords, wordsPerCycle)
}

// Branch-target buffer (internal/btb).
type (
	// BTBConfig describes a branch-target buffer.
	BTBConfig = btb.Config
	// BTB is the 2-bit-counter branch-target buffer of Section 3.1.
	BTB = btb.BTB
)

// NewBTB builds a branch-target buffer.
func NewBTB(cfg BTBConfig) (*BTB, error) { return btb.New(cfg) }

// PaperBTB returns the paper's 256-entry configuration.
func PaperBTB() BTBConfig { return btb.PaperConfig() }

// CPI simulation (internal/cpisim).
type (
	// SimConfig describes one simulation pass: delay slots, branch and
	// load schemes, and the banks of cache configurations evaluated
	// simultaneously.
	SimConfig = cpisim.Config
	// Sim is the multiprogrammed trace-driven CPI simulator (cacheSIM).
	Sim = cpisim.Sim
	// Workload is one process of the multiprogrammed mix.
	Workload = cpisim.Workload
	// SimResult is a run's per-benchmark cycle decomposition.
	SimResult = cpisim.Result
	// BenchResult is one benchmark's cycle decomposition.
	BenchResult = cpisim.BenchResult
	// BranchScheme selects static delayed branches or the BTB.
	BranchScheme = cpisim.BranchScheme
	// LoadScheme selects static or dynamic load-delay hiding.
	LoadScheme = cpisim.LoadScheme
)

// Branch and load scheme values.
const (
	BranchStatic = cpisim.BranchStatic
	BranchBTB    = cpisim.BranchBTB
	LoadStatic   = cpisim.LoadStatic
	LoadDynamic  = cpisim.LoadDynamic
)

// NewSim builds a CPI simulator over the workloads.
func NewSim(cfg SimConfig, ws []Workload) (*Sim, error) { return cpisim.New(cfg, ws) }

// Timing analysis (internal/timing).
type (
	// TimingModel bundles the SRAM/MCM macro-model (Equations 3-6) and
	// datapath delays; its methods run the minTcpu-style analyzer.
	TimingModel = timing.Model
	// TimingGraph is a latch-level timing graph whose MinPeriod is the
	// maximum cycle mean (ideal multiphase clocking).
	TimingGraph = timing.Graph
	// Floorplan is the Figure 10 MCM geometry.
	Floorplan = timing.Floorplan
)

// DefaultTimingModel returns the calibrated GaAs/MCM technology model.
func DefaultTimingModel() TimingModel { return timing.DefaultModel() }

// PlanFloor computes the Figure 10 floorplan for n chips.
func PlanFloor(chips int, pitchCm float64) Floorplan { return timing.PlanFloor(chips, pitchCm) }

// Experiments (internal/core).
type (
	// Suite is the synthesized benchmark suite with harmonic-mean weights.
	Suite = core.Suite
	// Params are the shared experiment parameters.
	Params = core.Params
	// Lab owns a suite plus memoized simulation passes; its methods
	// reproduce every table and figure of the paper.
	Lab = core.Lab
	// TPIPoint is one design point of the Section 5 analysis.
	TPIPoint = core.TPIPoint
	// Optimum is the best design found by a sweep.
	Optimum = core.Optimum
	// FigureResult is a family of curves rendered as a table plus chart.
	FigureResult = core.FigureResult
)

// BuildSuite synthesizes all benchmarks in specs.
func BuildSuite(specs []Spec) (*Suite, error) { return core.BuildSuite(specs) }

// DefaultParams returns the study's default experiment parameters.
func DefaultParams() Params { return core.DefaultParams() }

// NewLab wraps a suite with experiment parameters.
func NewLab(s *Suite, p Params) (*Lab, error) { return core.NewLab(s, p) }

// SummaryTable renders a set of TPI points.
func SummaryTable(title string, pts []TPIPoint) string { return core.SummaryTable(title, pts) }

// Observability (internal/obs).
type (
	// Registry is a run-scoped metric registry; attach one to a Lab
	// (SetObs) or a Sim (SetObs) to collect cache, BTB, interpreter, and
	// pass-timing metrics.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time export of a Registry, with JSON
	// and text renderers.
	MetricsSnapshot = obs.Snapshot
	// Progress reports live sweep progress (points done/total, ETA).
	Progress = obs.Progress
)

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewProgress returns a progress reporter writing to w.
func NewProgress(w io.Writer) *Progress { return obs.NewProgress(w) }

// Trace files and the event-trace tier (internal/trace).
type (
	// TraceRef is one reference record of the binary trace format.
	TraceRef = trace.Ref
	// TraceWriter streams references to a file (PCT2 delta/varint by
	// default; see NewTraceWriterV1 for the legacy fixed-record format).
	TraceWriter = trace.Writer
	// TraceReader reads both trace format versions back.
	TraceReader = trace.Reader
	// TraceCapture is an interpreter Handler that records a process's
	// reference stream through a delay-slot translation.
	TraceCapture = trace.Capture
	// EventTrace is an in-memory columnar capture of a multiprogrammed
	// pass's interpreter event streams; a Sim replays it against any cache
	// configuration with bit-identical results (Sim.ReplayContext).
	EventTrace = trace.EventTrace
	// EventRecorder captures an EventTrace from a live pass
	// (Sim.SetCapture).
	EventRecorder = trace.Recorder
	// EventStore is the bounded byte-budget LRU store of EventTraces with
	// single-flight capture that Lab uses as its second memo tier
	// (Params.TraceBudgetBytes, Lab.TraceStore).
	EventStore = trace.EventStore
)

// NewTraceWriterV1 writes the legacy fixed-record PCT1 trace format.
func NewTraceWriterV1(w io.Writer) (*TraceWriter, error) { return trace.NewWriterV1(w) }

// NewEventRecorder starts an event-trace capture for the given key and
// per-benchmark instruction budget.
func NewEventRecorder(key string, instsPerBench int64) *EventRecorder {
	return trace.NewRecorder(key, instsPerBench)
}

// NewEventStore returns a bounded event-trace store.
func NewEventStore(budgetBytes int64) *EventStore { return trace.NewStore(budgetBytes) }

// Assembly and binary-image helpers (internal/isa, internal/program).

// ParseInst assembles one instruction from its disassembly syntax (the
// inverse of the instruction's String method).
func ParseInst(s string) (isa.Inst, error) { return isa.ParseInst(s) }

// EncodeWord assembles one instruction located at word address pc into its
// 32-bit machine word.
func EncodeWord(in isa.Inst, pc uint32) (uint32, error) { return isa.Encode(in, pc) }

// DecodeWord is the inverse of EncodeWord.
func DecodeWord(word, pc uint32) (isa.Inst, error) { return isa.Decode(word, pc) }

// EncodeImage assembles a whole program into its binary text image.
func EncodeImage(p *Program) ([]uint32, error) { return program.EncodeImage(p) }

// Disassemble writes an assembly listing of the program.
func Disassemble(p *Program, w io.Writer) error { return program.Disassemble(p, w) }

// ParseCircuit reads a textual latch-level circuit description for the
// timing analyzer (the cmd/mintcpu input format).
func ParseCircuit(r io.Reader) (*TimingGraph, error) { return timing.ParseCircuit(r) }

// CollectProfile measures a program's branch bias on a training run for
// profile-guided static prediction.
func CollectProfile(p *Program, seed uint64, insts int64) (*BranchProfile, error) {
	return sched.CollectProfile(p, seed, insts)
}

// TranslateProfiled is Translate with profile-guided branch direction
// selection.
func TranslateProfiled(p *Program, b int, prof *BranchProfile) (*Translation, error) {
	return sched.TranslateProfiled(p, b, prof)
}

// ApplySchedule materializes the delay-slot schedule as transformed code
// (hoisted CTIs, replicated delay-slot instructions, noops) alongside its
// translation tables.
func ApplySchedule(p *Program, b int) (*Program, *Translation, error) {
	return sched.Apply(p, b)
}

// BranchProfile holds per-block branch bias measured on a training run.
type BranchProfile = sched.Profile

// HTTP design-space service (internal/server).
type (
	// Server exposes a Lab over HTTP/JSON with a content-addressed result
	// cache, worker-pool backpressure, and live metrics (the `pipecache
	// serve` subsystem).
	Server = server.Server
	// ServerConfig tunes the HTTP service; zero values take the defaults.
	ServerConfig = server.Config
	// DesignRequest is the body of POST /v1/simulate.
	DesignRequest = server.DesignRequest
	// BestRequest is the body of POST /v1/best.
	BestRequest = server.BestRequest
	// BuildInfo identifies a deployed binary (module version, VCS
	// revision, toolchain).
	BuildInfo = server.BuildInfo
)

// NewServer wraps a Lab with the HTTP design-space service.
func NewServer(lab *Lab, cfg ServerConfig) (*Server, error) { return server.New(lab, cfg) }

// Sharded coordinator tier (internal/cluster).
type (
	// Coordinator fronts a fleet of Server backends: single-point requests
	// are consistent-hashed onto a shard (keeping each shard's caches hot on
	// a stable slice of the key space) and design-space reductions are
	// fanned out as contiguous sub-range sweeps whose merge is byte-identical
	// to a single backend's answer (the `pipecache coordinate` subsystem).
	Coordinator = cluster.Coordinator
	// CoordinatorConfig tunes the coordinator; zero values take the
	// defaults.
	CoordinatorConfig = cluster.Config
)

// NewCoordinator builds a coordinator over the configured shard fleet.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) { return cluster.New(cfg) }

// VersionInfo reads the running binary's build metadata.
func VersionInfo() BuildInfo { return server.VersionInfo() }

// Baked design-space surfaces (internal/surface).
type (
	// Surface is a decoded PSF1 design-space artifact pinned in memory; a
	// Server configured with one answers /v1/* as O(1) lookups.
	Surface = surface.Surface
	// SurfaceData is the decoded (or to-be-encoded) content of a surface:
	// what BakeSurface produces and EncodeSurface serializes.
	SurfaceData = surface.Data
)

// BakeSurface evaluates lab's whole design space — every point, the four
// optimizations, the figures, and the tables — into a SurfaceData ready for
// EncodeSurface. The bake is deterministic at any Params.SweepWorkers.
func BakeSurface(ctx context.Context, lab *Lab) (*SurfaceData, error) {
	return surface.Bake(ctx, lab)
}

// EncodeSurface serializes a baked surface into the PSF1 byte format.
func EncodeSurface(d *SurfaceData) ([]byte, error) { return surface.Encode(d) }

// DecodeSurface parses and validates a PSF1 surface.
func DecodeSurface(b []byte) (*Surface, error) { return surface.Decode(b) }

// LoadSurface reads and decodes a surface file.
func LoadSurface(path string) (*Surface, error) { return surface.Load(path) }
