package pipecache

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, each printing the rows/series it reproduces (compare against
// EXPERIMENTS.md), plus microbenchmarks of the simulator substrate.
//
// The full 16-benchmark suite is synthesized once per test binary; the
// per-pass instruction budget defaults to 300k per benchmark and can be
// raised with PIPECACHE_BENCH_INSTS for full-fidelity runs:
//
//	PIPECACHE_BENCH_INSTS=2000000 go test -bench=. -benchtime=1x

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
)

var (
	benchOnce sync.Once
	benchLab  *Lab
	benchErr  error
)

func lab(b *testing.B) *Lab {
	b.Helper()
	benchOnce.Do(func() {
		insts := int64(300_000)
		if s := os.Getenv("PIPECACHE_BENCH_INSTS"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				benchErr = fmt.Errorf("bad PIPECACHE_BENCH_INSTS: %v", err)
				return
			}
			insts = v
		}
		suite, err := BuildSuite(Benchmarks())
		if err != nil {
			benchErr = err
			return
		}
		p := DefaultParams()
		p.Insts = insts
		benchLab, benchErr = NewLab(suite, p)
		if benchErr == nil {
			benchErr = benchLab.Prewarm()
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// report prints the reproduced table/figure once per benchmark run.
func report(b *testing.B, v fmt.Stringer) {
	b.Helper()
	b.StopTimer()
	if !testing.Verbose() {
		fmt.Println(v)
	} else {
		b.Log("\n" + v.String())
	}
	b.StartTimer()
}

func BenchmarkTable1_BenchmarkMix(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkTable2_CodeExpansion(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkTable3_StaticBranchPrediction(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkTable4_BTB(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkTable5_LoadDelayCPI(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkTable6_CycleTimes(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure3_BranchSlotsMissCPI(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure3(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure4_CPIvsICacheSize(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure4(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure5_CPIvsTcpu(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure6_EpsilonUnrestricted(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure7_EpsilonRestricted(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure8_CPIvsDCacheSize(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure8(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure9_TPIvsDCacheSize(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure10_Floorplan(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Figure10()
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure11_RelativeCPI(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure11(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkFigure12_TPIOptimum(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
			opt, err := l.BestDesign(l.P.L2TimeNs, LoadStatic, false)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			fmt.Printf("optimum: %s\n\n", opt.Best)
			b.StartTimer()
		}
	}
}

func BenchmarkFigure13_TPILowPenalty(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
			opt, err := l.BestDesign(l.P.L2TimeNs*0.6, LoadStatic, false)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			fmt.Printf("optimum (low penalty): %s\n\n", opt.Best)
			b.StartTimer()
		}
	}
}

// ---- Substrate microbenchmarks ----

// BenchmarkSimulatorThroughput measures end-to-end simulated instructions
// per second through the interpreter + caches + delay accounting.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := LookupBenchmark("espresso")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := SimConfig{
		BranchSlots: 2,
		LoadSlots:   2,
		ICaches:     []CacheConfig{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
		DCaches:     []CacheConfig{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
	}
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		sim, err := NewSim(cfg, []Workload{{Prog: prog, Seed: spec.Seed, Weight: 1}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(200_000)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Benches[0].Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSimInstrumented is BenchmarkSimulatorThroughput with a metrics
// registry attached: the delta between the two insts/s figures is the cost
// of observability. The hot loop keeps its plain per-pass stats structs and
// folds them into the registry once at the end of Run, so the delta should
// be in the noise (see TestInstrumentationOverhead).
func BenchmarkSimInstrumented(b *testing.B) {
	spec, _ := LookupBenchmark("espresso")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := SimConfig{
		BranchSlots: 2,
		LoadSlots:   2,
		ICaches:     []CacheConfig{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
		DCaches:     []CacheConfig{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
	}
	reg := NewRegistry()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		sim, err := NewSim(cfg, []Workload{{Prog: prog, Seed: spec.Seed, Weight: 1}})
		if err != nil {
			b.Fatal(err)
		}
		sim.SetObs(reg)
		res, err := sim.Run(200_000)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Benches[0].Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// replayFixture captures one 200k-instruction espresso event trace,
// shared by the replay benchmarks below.
var (
	replayFixOnce sync.Once
	replayFixCfg  SimConfig
	replayFixWs   []Workload
	replayFixTr   *EventTrace
	replayFixErr  error
)

const replayFixInsts = 200_000

func replayFixture(b *testing.B) (SimConfig, []Workload, *EventTrace) {
	b.Helper()
	replayFixOnce.Do(func() {
		spec, _ := LookupBenchmark("espresso")
		prog, err := BuildProgram(spec, 0)
		if err != nil {
			replayFixErr = err
			return
		}
		replayFixCfg = SimConfig{
			BranchSlots: 2,
			LoadSlots:   2,
			ICaches:     []CacheConfig{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
			DCaches:     []CacheConfig{{SizeKW: 8, BlockWords: 4, Assoc: 1, WriteBack: true}},
		}
		replayFixWs = []Workload{{Prog: prog, Seed: spec.Seed, Weight: 1}}
		capSim, err := NewSim(replayFixCfg, replayFixWs)
		if err != nil {
			replayFixErr = err
			return
		}
		rec := NewEventRecorder("bench", replayFixInsts)
		capSim.SetCapture(rec)
		if _, err := capSim.Run(replayFixInsts); err != nil {
			replayFixErr = err
			return
		}
		replayFixTr = rec.Finish()
	})
	if replayFixErr != nil {
		b.Fatal(replayFixErr)
	}
	return replayFixCfg, replayFixWs, replayFixTr
}

// BenchmarkTraceReplay measures the sequential replay kernel: one full
// espresso pass per iteration over a pre-captured event trace, through
// the compiled chunk plans and the lane-packed banks. The insts/s metric
// is the headline replay throughput (compare BENCH_sim.json).
func BenchmarkTraceReplay(b *testing.B) {
	cfg, ws, tr := replayFixture(b)
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		sim, err := NewSim(cfg, ws)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Replay(replayFixInsts, tr)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Benches[0].Insts
		sim.Release()
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkShardedReplay replays the same trace through the sharded
// single-pass tier at several worker counts. Results are bit-identical
// to BenchmarkTraceReplay at every count (see the differential tests in
// internal/cpisim); the wall-clock split across workers only appears
// when GOMAXPROCS grants the shards real cores.
func BenchmarkShardedReplay(b *testing.B) {
	cfg, ws, tr := replayFixture(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				sim, err := NewSim(cfg, ws)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.ReplaySharded(replayFixInsts, tr, workers)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Benches[0].Insts
				sim.Release()
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
		})
	}
}

// BenchmarkCacheAccess measures the raw cache model: the direct-mapped
// fast path against the LRU set-search paths.
func BenchmarkCacheAccess(b *testing.B) {
	for _, v := range []struct {
		name  string
		assoc int
	}{
		{"direct", 1},
		{"2way", 2},
		{"4way", 4},
	} {
		b.Run(v.name, func(b *testing.B) {
			c, err := NewCache(CacheConfig{SizeKW: 8, BlockWords: 4, Assoc: v.assoc, WriteBack: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(uint32(i*7)&0xfffff, i&7 == 0)
			}
		})
	}
}

// BenchmarkCacheBankAccess measures the fused single-pass kernel over the
// study's full power-of-two size ladder: one probe evaluates all six
// configurations at once against the lane-packed tag table. The
// ns/probe/config metric normalizes by the ladder width, so it compares
// directly against BenchmarkCacheAccess's per-cache ns/op whatever the
// ladder size.
func BenchmarkCacheBankAccess(b *testing.B) {
	var cfgs []CacheConfig
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		cfgs = append(cfgs, CacheConfig{SizeKW: s, BlockWords: 4, Assoc: 1, WriteBack: true})
	}
	bank, err := NewCacheBank(cfgs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Access(uint32(i*7)&0xfffff, i&7 == 0)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(cfgs)), "ns/probe/config")
}

// BenchmarkBTBResolve measures the branch-target buffer.
func BenchmarkBTBResolve(b *testing.B) {
	buf, err := NewBTB(PaperBTB())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint32(i*13) & 0xffff
		buf.Resolve(pc, i&3 != 0, pc+64)
	}
}

// BenchmarkInterp measures the bare interpreter event stream.
func BenchmarkInterp(b *testing.B) {
	spec, _ := LookupBenchmark("loops")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	it, err := NewInterp(prog, 1)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCollector(8)
	b.ResetTimer()
	it.Run(int64(b.N), c)
}

// BenchmarkTimingAnalyzer measures the Karp max-cycle-mean solver on the
// CPU graph.
func BenchmarkTimingAnalyzer(b *testing.B) {
	m := DefaultTimingModel()
	for i := 0; i < b.N; i++ {
		if _, err := m.TCPU(32, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslate measures the delay-slot post-processor on a full
// benchmark image.
func BenchmarkTranslate(b *testing.B) {
	spec, _ := LookupBenchmark("gcc")
	prog, err := BuildProgram(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Translate(prog, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benchmarks (the paper's extensions and future work) ----

func BenchmarkAblation_Associativity(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.AssocStudy(8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkAblation_BlockSize(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.BlockSizeStudy(8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkAblation_TwoLevel(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.TwoLevelStudy(4, []int{32, 64, 128, 256, 512}, 6, 40)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkAblation_WritePolicy(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.WritePolicyStudy(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkPolicyStudy(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.PolicyStudy(4, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkAblation_BTBSize(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.BTBSizeStudy([]int{64, 256, 1024, 4096})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkAblation_ProfilePrediction(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.ProfileStudy()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkAblation_Quantum(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.QuantumStudy(8, 10, []int64{2000, 20000, 100000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

func BenchmarkAblation_Stability(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.StabilityStudy([]uint64{0, 0xA5A5, 0x5A5A})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
			b.StopTimer()
			fmt.Printf("optimal depths agree across seeds: %v\n\n", r.DepthsAgree())
			b.StartTimer()
		}
	}
}

func BenchmarkDepthMatrix(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.DepthMatrix(l.P.L2TimeNs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
			b.StopTimer()
			fmt.Printf("b = l diagonal optimal: %v\n\n", r.DiagonalOptimal(0.05))
			b.StartTimer()
		}
	}
}

func BenchmarkAsymmetricSplits(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r, err := l.AsymmetryStudy(l.P.L2TimeNs * 0.6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, r)
		}
	}
}

// BenchmarkSurfaceLookup measures one /v1/simulate answer served from a
// baked surface, end to end through the HTTP handler (decode, index,
// marshal, ETag). Compare against BenchmarkSimulatorThroughput: the baked
// path replaces a full simulation pass with an index-and-read, so it should
// be several orders of magnitude cheaper per request.
func BenchmarkSurfaceLookup(b *testing.B) {
	l := lab(b)
	d, err := BakeSurface(context.Background(), l)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := EncodeSurface(d)
	if err != nil {
		b.Fatal(err)
	}
	sf, err := DecodeSurface(enc)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(l, ServerConfig{Surface: sf, AccessLog: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	body := []byte(`{"b":2,"l":2,"isize_kw":8,"dsize_kw":8}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
